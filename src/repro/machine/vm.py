"""Virtual-to-physical page placement.

The UltraSPARC E-cache is physically indexed and tagged while workloads
generate virtual addresses, so page placement decides which cache bins a
page's lines land in.  The paper implements "a variant of the hierarchical
page mapping policy suggested by Kessler and Hill [13] ... shown to perform
better than a naive (arbitrary) page placement" (section 3.1).  Both
policies are provided here; the hierarchical one is the default everywhere,
and the naive one backs the page-placement ablation bench.

Pages are mapped lazily, on first touch (a simulated page fault), exactly
like a demand-paged VM system.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.machine.address import LINE_BYTES, PAGE_BYTES


class PlacementPolicy:
    """Chooses a physical frame for a faulting virtual page.

    Policies see the *cache geometry* (number of page-sized bins in the
    cache) because that is what page coloring is about; they do not see
    cache contents.
    """

    def __init__(
        self,
        num_bins: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        if num_bins <= 0:
            raise ValueError("cache must have at least one page bin")
        self.num_bins = num_bins
        #: the tiebreak stream: either the machine's generator, or one
        #: derived from the explicit ``seed`` parameter -- never an
        #: implicit constant buried in the implementation
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def choose_bin(self, vpage: int) -> int:
        """Pick the cache bin (page color) for a faulting page."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-run state (bin usage counts)."""


class NaivePlacement(PlacementPolicy):
    """Arbitrary placement: a uniformly random bin per fault.

    This is the baseline Kessler and Hill improve upon; kept for the
    ablation bench.
    """

    def choose_bin(self, vpage: int) -> int:
        return int(self.rng.integers(self.num_bins))


class KesslerHillPlacement(PlacementPolicy):
    """Hierarchical page placement (Kessler & Hill 1992, section 3.1).

    A fault descends a binary tree over groups of cache bins, at each level
    taking the half with the lighter aggregate load, and finally picks the
    least-loaded bin in the reached leaf group (rotating the tiebreak so
    identical fault sequences do not align onto identical bins).  The
    effect is to spread pages evenly over cache bins and so reduce conflict
    misses -- which the paper relies on to justify the model's
    uniform-mapping assumption, and which "was shown to perform better than
    a naive (arbitrary) page placement".
    """

    #: bins per color group: a page may be placed in any bin of its
    #: virtual color's group, wherever the current load is lightest
    leaf_group: int = 4

    def __init__(
        self,
        num_bins: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ):
        super().__init__(num_bins, rng, seed=seed)
        self._bin_load = np.zeros(num_bins, dtype=np.int64)

    def choose_bin(self, vpage: int) -> int:
        # Page coloring picks the group (so virtual locality maps to
        # distinct bins, like the static policy); the load comparison picks
        # the bin within the group (the hierarchical refinement); a random
        # tie-break stops two identical allocation sequences from landing
        # on identical bins.
        preferred = vpage % self.num_bins
        lo = (preferred // self.leaf_group) * self.leaf_group
        hi = min(lo + self.leaf_group, self.num_bins)
        group = list(range(lo, hi))
        loads = self._bin_load[group]
        lightest = loads.min()
        candidates = [b for b, load in zip(group, loads) if load == lightest]
        best = candidates[int(self.rng.integers(len(candidates)))]
        self._bin_load[best] += 1
        return best

    def reset(self) -> None:
        self._bin_load[:] = 0


class VirtualMemory:
    """Demand-paged virtual memory with pluggable placement.

    Frames are unbounded (the paper notes all runs fit in RAM); what matters
    is the *color* of the frame each page gets, i.e. which cache bin its
    lines index into.  A frame is identified by a physical page number whose
    low bits encode its bin:  ``ppage % num_bins == bin``.
    """

    def __init__(
        self,
        cache_bytes: int,
        page_bytes: int = PAGE_BYTES,
        line_bytes: int = LINE_BYTES,
        policy: Optional[PlacementPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if cache_bytes % page_bytes != 0:
            raise ValueError("cache size must be a whole number of pages")
        self.page_bytes = page_bytes
        self.line_bytes = line_bytes
        self.lines_per_page = page_bytes // line_bytes
        self.num_bins = cache_bytes // page_bytes
        self.policy = policy or KesslerHillPlacement(self.num_bins, rng=rng)
        if self.policy.num_bins != self.num_bins:
            raise ValueError("placement policy built for a different cache geometry")
        self._v2p: Dict[int, int] = {}
        self._p2v: Dict[int, int] = {}
        self._next_frame_in_bin: List[int] = list(range(self.num_bins))
        self.page_faults = 0

    def translate_page(self, vpage: int) -> int:
        """Physical page for ``vpage``, faulting it in if necessary."""
        ppage = self._v2p.get(vpage)
        if ppage is None:
            ppage = self._fault(vpage)
        return ppage

    def _fault(self, vpage: int) -> int:
        self.page_faults += 1
        color = self.policy.choose_bin(vpage)
        ppage = self._next_frame_in_bin[color]
        self._next_frame_in_bin[color] += self.num_bins
        self._v2p[vpage] = ppage
        self._p2v[ppage] = vpage
        return ppage

    def translate_lines(self, vlines: np.ndarray) -> np.ndarray:
        """Translate an array of virtual line numbers to physical lines.

        Vectorised per page: a touch batch typically spans few pages, so we
        loop over the unique pages and translate each page's lines at once.
        """
        vlines = np.asarray(vlines, dtype=np.int64)
        if vlines.size == 0:
            return vlines
        lpp = self.lines_per_page
        vpages = vlines // lpp
        offsets = vlines - vpages * lpp
        first = int(vpages[0])
        if vpages[-1] == first and (vpages == first).all():
            # single-page batch: one translation covers every line
            return self.translate_page(first) * lpp + offsets
        uniq, inverse = np.unique(vpages, return_inverse=True)
        bases = np.empty(uniq.shape, dtype=np.int64)
        for i, vpage in enumerate(uniq.tolist()):
            bases[i] = self.translate_page(vpage) * lpp
        return bases[inverse] + offsets

    def reverse_line(self, pline: int) -> Optional[int]:
        """Virtual line for a physical line, or ``None`` if unmapped."""
        lpp = self.lines_per_page
        vpage = self._p2v.get(pline // lpp)
        if vpage is None:
            return None
        return vpage * lpp + pline % lpp

    def reverse_lines(self, plines: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`reverse_line`; unmapped lines map to ``-1``."""
        lpp = self.lines_per_page
        out = np.empty(plines.shape, dtype=np.int64)
        for i, pline in enumerate(plines):
            vline = self.reverse_line(int(pline))
            out[i] = -1 if vline is None else vline
        return out

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages currently mapped."""
        return len(self._v2p)
