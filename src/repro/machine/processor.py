"""A simulated processor: cycle accounting plus counter updates.

A processor consumes the memory activity of whatever thread the runtime has
dispatched on it: batches of data-line touches, instruction-fetch batches,
and pure compute (instruction counts).  Every touch flows through the
processor's cache hierarchy; E-cache references and hits are accumulated in
the processor's performance counters exactly as the UltraSPARC PICs would
see them, and cycles are charged per Table 1 latencies.

The distinction between a 50-cycle local miss and an 80-cycle remote miss
(line cached by another processor, Enterprise 5000) is priced by the
machine-level directory, which the processor consults through the
``remote_fraction`` hook installed by :class:`repro.machine.smp.Machine`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.machine.backend import HierarchyBackend
from repro.machine.cache import AccessResult
from repro.machine.configs import MachineConfig
from repro.machine.counters import CounterEvent, PerformanceCounters
from repro.machine.hierarchy import CacheHierarchy

#: Hook: given the missed lines, return how many were held by another cpu.
RemoteProbe = Callable[[np.ndarray], int]


class Processor:
    """One cpu of the simulated SMP."""

    def __init__(
        self,
        cpu_id: int,
        config: MachineConfig,
        hierarchy: Optional[HierarchyBackend] = None,
    ) -> None:
        self.cpu_id = cpu_id
        self.config = config
        #: the cache backend priced by this cpu (replay hierarchy by
        #: default; the Machine injects the analytic one on demand)
        self.hierarchy: HierarchyBackend = (
            hierarchy if hierarchy is not None else CacheHierarchy(config)
        )
        self.counters = PerformanceCounters()
        self.cycles = 0
        self.instructions = 0
        #: misses whose line another cpu cached (priced at the remote cost)
        self.remote_misses = 0
        self._remote_probe: Optional[RemoteProbe] = None

    def set_remote_probe(self, probe: RemoteProbe) -> None:
        """Install the directory callback that prices remote misses."""
        self._remote_probe = probe

    # -- execution interface ----------------------------------------------

    def compute(self, instructions: int) -> None:
        """Execute ``instructions`` cycles of non-memory work.

        Simulated at one instruction per cycle, the base rate of the
        single-issue accounting the paper's relative-performance numbers
        assume.
        """
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        self.instructions += instructions
        self.cycles += instructions
        self.counters.record(CounterEvent.INSTRUCTIONS, instructions)
        self.counters.record(CounterEvent.CYCLES, instructions)

    def touch_data(self, plines: np.ndarray, write: bool = False) -> AccessResult:
        """Touch physical data lines; returns the E-cache access result."""
        result = self.hierarchy.access_data(plines, write=write)
        self._account(result, data=True)
        return result

    def fetch_instructions(self, plines: np.ndarray) -> AccessResult:
        """Fetch instruction lines (used when workloads model code regions)."""
        result = self.hierarchy.access_instructions(plines)
        self._account(result, data=False)
        return result

    def _account(self, result: AccessResult, data: bool) -> None:
        t = self.config.timings
        remote = 0
        if result.misses and self._remote_probe is not None:
            remote = self._remote_probe(result.installed)
        self.remote_misses += remote
        local = result.misses - remote
        cycles = (
            result.hits * t.l2_hit
            + local * t.l2_miss
            + remote * t.l2_miss_remote
        )
        # Each reference is also an instruction's memory stage; charge one
        # base cycle per reference so pure-touch threads make progress on
        # the simulated clock even with a 100% hit rate.
        cycles += result.refs
        self.instructions += result.refs
        self.cycles += cycles
        self.counters.record(CounterEvent.INSTRUCTIONS, result.refs)
        self.counters.record(CounterEvent.CYCLES, cycles)
        self.counters.record(CounterEvent.ECACHE_REFS, result.refs)
        self.counters.record(CounterEvent.ECACHE_HITS, result.hits)
        self.counters.record(CounterEvent.ECACHE_MISSES, result.misses)

    # -- convenience ------------------------------------------------------

    @property
    def l2(self):
        """This cpu's E-cache (the object the tracer watches)."""
        return self.hierarchy.l2

    def snapshot(self) -> dict:
        """Cycle/instruction/E-cache counters for reports."""
        stats = self.l2.stats.snapshot()
        stats.update(
            cpu=self.cpu_id,
            cycles=self.cycles,
            instructions=self.instructions,
            remote_misses=self.remote_misses,
        )
        return stats
