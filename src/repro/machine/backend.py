"""The cache-hierarchy backend protocol and registry.

The simulator originally had exactly one way to answer "what does this
touch batch cost": replay it through the per-processor
:class:`~repro.machine.hierarchy.CacheHierarchy`.  This module extracts
the interface that replay satisfied into an explicit protocol so a
second, *analytical* implementation (:mod:`repro.machine.analytic`) can
stand in for it -- per experiment and per bench run, selected as
``--backend analytic|sim`` (default ``sim``).

A backend is the per-cpu object :class:`~repro.machine.processor.Processor`
drives.  It must:

- price data-touch and instruction-fetch batches as
  :class:`~repro.machine.cache.AccessResult` values (refs/hits/misses are
  what feed the performance counters and the cycle accounting);
- expose an ``l2`` attribute carrying cumulative
  :class:`~repro.machine.cache.CacheStats` (reports and the tracer read
  it);
- support ``invalidate`` (coherence traffic) and ``flush`` (between
  workload phases).

The simulated backend operates on *physical* lines behind the VM; the
analytic backend skips translation and works on virtual lines directly
-- the :class:`~repro.machine.smp.Machine` routes accordingly.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.machine.cache import AccessResult, CacheStats
from repro.machine.configs import MachineConfig

try:  # Protocol is 3.8+; keep the import explicit for mypy
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old pythons only
    from typing_extensions import Protocol, runtime_checkable  # type: ignore

#: the selectable cache backends (CLI: ``--backend``)
BACKEND_NAMES: Tuple[str, ...] = ("sim", "analytic")

#: the default backend: faithful per-reference simulation
DEFAULT_BACKEND = "sim"


@runtime_checkable
class CacheLevel(Protocol):
    """What reports/tracers need from a backend's ``l2`` attribute."""

    num_lines: int
    stats: CacheStats


@runtime_checkable
class HierarchyBackend(Protocol):
    """The per-processor cache backend a :class:`Processor` drives.

    Extracted from the concrete :class:`CacheHierarchy` interface; both
    the replay hierarchy and the analytic fast path satisfy it.
    """

    config: MachineConfig

    def access_data(
        self, plines: np.ndarray, write: bool = False
    ) -> AccessResult:
        """Price a data-touch batch; returns the E-cache-level result."""

    def access_instructions(self, plines: np.ndarray) -> AccessResult:
        """Price an instruction-fetch batch."""

    def invalidate(self, plines: np.ndarray) -> int:
        """Remove lines (coherence traffic); returns lines invalidated."""

    def flush(self) -> int:
        """Empty the hierarchy; returns E-cache lines evicted."""


#: factory type: config -> per-cpu backend instance
BackendFactory = Callable[[MachineConfig], HierarchyBackend]


def resolve_backend(name: str) -> BackendFactory:
    """Map a backend name to its per-cpu factory.

    Imports are deferred so ``repro.machine.hierarchy`` and
    ``repro.machine.analytic`` stay import-independent of each other.
    """
    if name == "sim":
        from repro.machine.hierarchy import CacheHierarchy

        return CacheHierarchy
    if name == "analytic":
        from repro.machine.analytic import AnalyticHierarchy

        return AnalyticHierarchy
    raise ValueError(
        f"unknown cache backend {name!r}; expected one of {BACKEND_NAMES}"
    )
