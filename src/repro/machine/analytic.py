"""Analytical reuse-distance cache backend (the fast path for sweeps).

The replay hierarchy answers "how many of these touches miss" by
simulating every reference through residency arrays, a VM translation
layer, and a coherence directory.  That faithfulness is what the paper's
accuracy experiments need -- and what caps sweeps far below the paper's
1024-thread scale.  This module is the escape hatch the paper's own
model (section 2.4 + appendix) proves exists: for a direct-mapped cache
of ``N`` lines where each miss evicts a given resident line with
probability ``1/N``, a line last touched ``d`` *misses* ago is still
resident with probability

    p_survive(d) = k ** d,      k = (N - 1) / N

so the expected miss count of a touch batch is a closed-form function of
each line's **reuse distance measured in expected misses** -- no
per-reference replay, no residency state, just one clock and one
last-touch timestamp per line (the same quantity Gysi et al.'s
analytical fully-associative model and Barai et al.'s shared-cache
reuse-profile model are built on).

Mechanics, per touch batch:

- distinct lines are looked up in a per-cpu ``last_clock`` array
  (virtual lines -- the analytic backend skips address translation);
- reuse distances ``d = clock - last_clock[line]`` feed the survival
  form above; never-seen lines are compulsory misses (``p = 0``);
- the batch's expected misses ``sum(1 - p)`` advance the clock, and the
  distances are folded into a log-bucketed :class:`ReuseHistogram`
  (per-cpu; interval-level deltas come from snapshotting it at
  scheduling boundaries);
- the fractional expectation is converted to the integer miss count the
  counters need by emitting ``round(clock) - emitted`` -- the reported
  integer stream tracks the expectation within one miss at all times
  instead of accumulating rounding bias.

What the model deliberately ignores (and therefore where it errs):

- **conflict structure**: survival is uniform-eviction, so pathological
  direct-mapped conflicts (two hot lines sharing an index) are averaged
  away; the simulator sees them, the analytic backend does not;
- **coherence**: invalidations from other cpus' writes are not modelled
  (the paper's model makes the same choice, section 3.4: the PICs could
  not count invalidations) -- on multi-cpu write-sharing workloads the
  analytic backend under-counts misses;
- **intra-batch eviction**: a batch's own misses do not thin the batch's
  earlier lines (negligible while batches are small next to the cache).

The cross-check that keeps this honest is the simulated oracle:
``repro.sim.oracle`` sweeps the fixture workloads under both backends
and pins per-workload relative-error bounds (the ``analytic-oracle`` CI
job fails when a change regresses them).  See docs/MODEL.md "The
analytic backend".
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.machine.cache import AccessResult, CacheStats
from repro.machine.configs import MachineConfig

_EMPTY = np.empty(0, dtype=np.int64)

#: log2 buckets for reuse distances in expected-miss space; bucket ``i``
#: holds distances in ``[2**i - 1, 2**(i+1) - 1)``, so bucket 0 is the
#: exact-reuse case (``d == 0`` -- guaranteed hits) and 40 buckets cover
#: any distance a realistic sweep can accumulate
_HIST_BUCKETS = 40


class ReuseHistogram:
    """Log-bucketed reuse distances plus a compulsory-miss tally.

    Distances are in expected-miss space, so the histogram *is* the
    miss-probability profile: a distance-``d`` touch hits with
    ``k ** d``.  Buckets are log2 because the survival form is
    exponential -- linear binning would waste resolution where nothing
    changes and blur it where everything does.
    """

    def __init__(self, num_buckets: int = _HIST_BUCKETS) -> None:
        self.buckets = np.zeros(num_buckets, dtype=np.int64)
        #: touches to never-before-seen lines (infinite reuse distance)
        self.compulsory = 0

    def add(self, distances: np.ndarray) -> None:
        """Fold a batch of reuse distances (floats, >= 0) in."""
        if distances.size == 0:
            return
        idx = np.log2(distances + 1.0).astype(np.int64)
        np.clip(idx, 0, self.buckets.size - 1, out=idx)
        self.buckets += np.bincount(idx, minlength=self.buckets.size)

    def add_compulsory(self, count: int) -> None:
        self.compulsory += count

    @property
    def total(self) -> int:
        """All touches recorded (finite-distance + compulsory)."""
        return int(self.buckets.sum()) + self.compulsory

    def snapshot(self) -> "ReuseHistogram":
        """An independent copy (for interval deltas)."""
        copy = ReuseHistogram(self.buckets.size)
        copy.buckets = self.buckets.copy()
        copy.compulsory = self.compulsory
        return copy

    def delta(self, earlier: "ReuseHistogram") -> "ReuseHistogram":
        """The touches recorded since ``earlier`` was snapshotted."""
        out = ReuseHistogram(self.buckets.size)
        out.buckets = self.buckets - earlier.buckets
        out.compulsory = self.compulsory - earlier.compulsory
        return out

    def as_dict(self) -> Dict[str, List[int]]:
        return {
            "buckets": self.buckets.tolist(),
            "compulsory": [self.compulsory],
        }


class AnalyticCache:
    """One cpu's E-cache, reduced to a miss clock and last-touch stamps.

    State is three scalars plus one float per *virtual line ever seen*
    (grown geometrically); every operation is a handful of vectorised
    passes over the batch's distinct lines.
    """

    def __init__(self, num_lines: int) -> None:
        if num_lines < 1:
            raise ValueError("cache must have at least one line")
        self.num_lines = num_lines
        self.stats = CacheStats()
        self.hist = ReuseHistogram()
        # k = (N-1)/N; a one-line cache degenerates to k = 0 (every miss
        # evicts the only line), handled as a special case in access()
        self._logk = (
            math.log((num_lines - 1) / num_lines) if num_lines > 1 else 0.0
        )
        #: cumulative expected misses -- the reuse-distance clock
        self.clock = 0.0
        #: integer misses reported so far (trails the clock by < 1)
        self._emitted = 0
        #: last-touch clock per virtual line; -1 = never seen
        self._last = np.full(1024, -1.0)

    # -- bookkeeping -------------------------------------------------------

    def _ensure(self, max_line: int) -> None:
        if max_line < self._last.size:
            return
        size = self._last.size
        while size <= max_line:
            size *= 2
        grown = np.full(size, -1.0)
        grown[: self._last.size] = self._last
        self._last = grown

    def _survival(self, distances: np.ndarray) -> np.ndarray:
        """Residency probability of lines last touched ``d`` misses ago."""
        if self.num_lines == 1:
            return (distances <= 0.0).astype(float)
        return np.exp(distances * self._logk)

    # -- the access path ---------------------------------------------------

    def access(self, lines: np.ndarray, write: bool = False) -> AccessResult:
        """Price one touch batch; integer hits/misses, no line events."""
        refs = int(lines.size)
        if refs == 0:
            return AccessResult(0, 0, 0, _EMPTY, _EMPTY)
        if refs == 1 or bool(np.all(lines[1:] > lines[:-1])):
            distinct = lines  # already strictly ascending (region touches)
        else:
            distinct = np.unique(lines)
        self._ensure(int(distinct[-1]))
        prev = self._last[distinct]
        seen = prev >= 0.0
        num_seen = int(np.count_nonzero(seen))
        if num_seen:
            dist = self.clock - prev[seen]
            hit_mass = float(self._survival(dist).sum())
            self.hist.add(dist)
        else:
            hit_mass = 0.0
        self.hist.add_compulsory(distinct.size - num_seen)
        # duplicates within the batch re-touch a just-touched line
        # (distance 0): guaranteed hits, no clock movement
        self.clock += float(distinct.size) - hit_mass
        self._last[distinct] = self.clock
        # integerise against the cumulative expectation, not the batch:
        # the carry keeps the reported stream within one miss of the
        # clock no matter how fractional individual batches are
        target = int(round(self.clock))
        misses = min(refs, max(0, target - self._emitted))
        self._emitted += misses
        hits = refs - misses
        self.stats.refs += refs
        self.stats.hits += hits
        self.stats.misses += misses
        return AccessResult(refs, hits, misses, _EMPTY, _EMPTY)

    # -- footprints --------------------------------------------------------

    def expected_resident(self, lines: np.ndarray) -> float:
        """Expected number of ``lines`` still resident (sum of survivals).

        The analytic stand-in for the tracer's observed footprint: the
        tracer counts installed-and-not-evicted lines, this sums each
        line's survival probability since its last touch.
        """
        if lines.size == 0:
            return 0.0
        inside = lines[lines < self._last.size]
        if inside.size == 0:
            return 0.0
        prev = self._last[inside]
        seen = prev >= 0.0
        if not np.any(seen):
            return 0.0
        return float(self._survival(self.clock - prev[seen]).sum())

    # -- protocol compatibility (listeners are never fed) ------------------

    def on_install(self, listener: object) -> None:
        """Accepted for interface parity; the analytic cache emits no
        per-line events (it has no notion of which lines are resident)."""

    def on_evict(self, listener: object) -> None:
        """Accepted for interface parity; see :meth:`on_install`."""

    def invalidate(self, lines: np.ndarray) -> int:
        """Forget lines (coherence): they become compulsory again."""
        if lines.size == 0:
            return 0
        inside = lines[lines < self._last.size]
        known = int(np.count_nonzero(self._last[inside] >= 0.0))
        self._last[inside] = -1.0
        self.stats.invalidations += known
        return known

    def flush(self) -> int:
        """Forget everything; returns expected lines resident (rounded)."""
        known = self._last >= 0.0
        resident = 0
        if np.any(known):
            resident = int(
                round(
                    float(
                        self._survival(self.clock - self._last[known]).sum()
                    )
                )
            )
        self._last.fill(-1.0)
        return resident


class AnalyticHierarchy:
    """Drop-in :class:`HierarchyBackend`: a single analytic E-cache level.

    L1s are not modelled (the paper's analysis targets the E-cache;
    ``model_l1`` is ignored here), instruction fetches share the unified
    cache exactly as in the replay hierarchy, and ``l2`` exposes the
    :class:`~repro.machine.cache.CacheStats` every report reads.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l2 = AnalyticCache(config.l2_lines)

    def access_data(
        self, plines: np.ndarray, write: bool = False
    ) -> AccessResult:
        return self.l2.access(plines, write=write)

    def access_instructions(self, plines: np.ndarray) -> AccessResult:
        return self.l2.access(plines, write=False)

    def invalidate(self, plines: np.ndarray) -> int:
        return self.l2.invalidate(plines)

    def flush(self) -> int:
        return self.l2.flush()

    def expected_resident(self, vlines: np.ndarray) -> float:
        """Expected resident count of ``vlines`` (footprint estimation)."""
        return self.l2.expected_resident(vlines)

    def histogram(self) -> ReuseHistogram:
        """The cumulative reuse-distance histogram (snapshot for deltas)."""
        return self.l2.hist
