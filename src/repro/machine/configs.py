"""Machine configurations from the paper's Table 1 and section 5.

Two measured platforms:

- ``ULTRA1`` -- stand-alone 167 MHz UltraSPARC-1 workstation: 16 KB L1-I,
  16 KB L1-D, unified 512 KB direct-mapped external (E-) cache with 64-byte
  lines, 3-cycle E-cache hit, 42-cycle miss penalty.
- ``E5000_8CPU`` -- 8-processor Sun Enterprise 5000 with the same
  processors; an E-cache miss costs 50 cycles, or 80 cycles "if the line is
  cached by another processor".

``SMALL`` is a deliberately tiny configuration (16 KB E-cache, 256 lines)
used by the test suite so simulations finish quickly while exercising the
same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.address import LINE_BYTES, PAGE_BYTES


@dataclass(frozen=True)
class MemoryTimings:
    """Cycle costs of the memory hierarchy levels (Table 1, section 5)."""

    l1_hit: int = 1
    l2_hit: int = 3
    l2_miss: int = 42
    l2_miss_remote: int = 42  # cost when another cpu caches the line

    def __post_init__(self) -> None:
        if min(self.l1_hit, self.l2_hit, self.l2_miss, self.l2_miss_remote) <= 0:
            raise ValueError("all latencies must be positive cycles")


@dataclass(frozen=True)
class MachineConfig:
    """Full description of a simulated platform."""

    name: str
    num_cpus: int = 1
    clock_mhz: int = 167
    line_bytes: int = LINE_BYTES
    page_bytes: int = PAGE_BYTES
    l1i_bytes: int = 16 * 1024
    l1d_bytes: int = 16 * 1024
    l2_bytes: int = 512 * 1024
    #: E-cache associativity; 1 = direct-mapped (the model's domain), >1
    #: selects the LRU set-associative simulator (model-extension ablation)
    l2_ways: int = 1
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    model_l1: bool = False  # the analysis targets the E-cache (section 2.1)
    #: model per-cpu dTLBs (64-entry fully associative, ~30-cycle misses);
    #: off by default -- the paper's evaluation concentrates on the E-cache
    model_tlb: bool = False
    #: base cost of an Active Threads context switch, "on the order of 100
    #: instructions on a variety of modern architectures" [33] (section 4.1)
    context_switch_instructions: int = 100

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ValueError("need at least one cpu")
        if self.l2_bytes % self.line_bytes != 0:
            raise ValueError("L2 size must be a whole number of lines")
        if self.l2_bytes % self.page_bytes != 0:
            raise ValueError("L2 size must be a whole number of pages")

    @property
    def l2_lines(self) -> int:
        """N, the E-cache size in lines -- the model's central parameter."""
        return self.l2_bytes // self.line_bytes

    def with_cpus(self, num_cpus: int) -> "MachineConfig":
        """The same platform with a different processor count."""
        return replace(self, name=f"{self.name}x{num_cpus}", num_cpus=num_cpus)


#: Stand-alone UltraSPARC-1 workstation (Table 1).
ULTRA1 = MachineConfig(
    name="ultra1",
    num_cpus=1,
    timings=MemoryTimings(l1_hit=1, l2_hit=3, l2_miss=42, l2_miss_remote=42),
)

#: 8-cpu Sun Enterprise 5000 (section 5): 50-cycle local miss, 80-cycle
#: miss when the line is cached by another processor.
E5000_8CPU = MachineConfig(
    name="e5000",
    num_cpus=8,
    timings=MemoryTimings(l1_hit=1, l2_hit=3, l2_miss=50, l2_miss_remote=80),
)

#: Tiny platform for fast tests: 16 KB E-cache = 256 lines of 64 bytes,
#: 2 KB pages so there are 8 page bins.
SMALL = MachineConfig(
    name="small",
    num_cpus=1,
    l1i_bytes=1024,
    l1d_bytes=1024,
    l2_bytes=16 * 1024,
    page_bytes=2048,
)
