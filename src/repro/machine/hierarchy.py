"""Per-processor cache hierarchy (Table 1).

Each simulated processor owns a 16 KB L1 I-cache, a 16 KB L1 D-cache and a
unified external (E-) cache.  The E-cache "maintains inclusion for both
I-cache and D-cache" (Table 1), so an E-cache eviction invalidates the
corresponding L1 line.

The analytical model and all of the paper's measurements concern the
E-cache, so by default (``MachineConfig.model_l1 = False``) data touches go
straight to the E-cache at line granularity; enabling L1 modelling filters
E-cache references through the L1s, which only sharpens the reload-transient
picture without changing any qualitative result.

This class is the reference implementation of the
:class:`repro.machine.backend.HierarchyBackend` protocol (the ``sim``
backend); :class:`repro.machine.analytic.AnalyticHierarchy` is the
closed-form alternative selected with ``--backend analytic``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.machine.cache import AccessResult, DirectMappedCache, SetAssociativeCache
from repro.machine.configs import MachineConfig


class CacheHierarchy:
    """L1-I + L1-D + unified L2 with inclusion, for one processor."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        if config.l2_ways > 1:
            self.l2 = SetAssociativeCache(
                config.l2_bytes, config.line_bytes, ways=config.l2_ways
            )
        else:
            self.l2 = DirectMappedCache(config.l2_bytes, config.line_bytes)
        self.l1d: Optional[DirectMappedCache] = None
        self.l1i: Optional[DirectMappedCache] = None
        if config.model_l1:
            self.l1d = DirectMappedCache(config.l1d_bytes, config.line_bytes)
            self.l1i = DirectMappedCache(config.l1i_bytes, config.line_bytes)
            # Inclusion: lines leaving the E-cache leave the L1s too.
            self.l2.on_evict(self._enforce_inclusion)

    def _enforce_inclusion(self, plines: np.ndarray) -> None:
        assert self.l1d is not None and self.l1i is not None
        self.l1d.invalidate(plines)
        self.l1i.invalidate(plines)

    def access_data(self, plines: np.ndarray, write: bool = False) -> AccessResult:
        """Run a data-touch batch through L1-D (if modelled) then the E-cache.

        Returns the *E-cache* access result; L1 activity is visible through
        ``self.l1d.stats``.
        """
        if self.l1d is not None:
            l1 = self.l1d.access(plines, write=write)
            plines = l1.miss_lines  # only L1 misses reach the E-cache
        return self.l2.access(plines, write=write)

    def access_instructions(self, plines: np.ndarray) -> AccessResult:
        """Run an instruction-fetch batch through L1-I then the E-cache."""
        if self.l1i is not None:
            l1 = self.l1i.access(plines, write=False)
            plines = l1.miss_lines
        return self.l2.access(plines, write=False)

    def invalidate(self, plines: np.ndarray) -> int:
        """Invalidate lines everywhere (coherence traffic from other cpus)."""
        count = self.l2.invalidate(plines)
        if self.l1d is not None:
            self.l1d.invalidate(plines)
        if self.l1i is not None:
            self.l1i.invalidate(plines)
        return count

    def flush(self) -> int:
        """Flush the whole hierarchy; returns E-cache lines evicted."""
        if self.l1d is not None:
            self.l1d.flush()
        if self.l1i is not None:
            self.l1i.flush()
        return self.l2.flush()
