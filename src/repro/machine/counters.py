"""Hardware performance-counter emulation.

Models the UltraSPARC Performance Instrumentation Counters (section 2.2):
two 32-bit counters (PIC0/PIC1) whose events are selected through a
Performance Control Register (PCR), with a user-access bit that lets the
runtime read them "for free".  On both of the paper's platforms the PICs
are "configured to accumulate the number of E-cache references and hits"
(section 5) and the scheduler derives misses as references minus hits.

The emulation enforces the same constraints real hardware imposes:

- only two events can be counted at once (the reason the paper's model
  ignores invalidation effects: "the performance instrumentation counters
  of the hardware available to us could not keep track of the secondary
  cache misses and invalidation events at the same time", section 3.4);
- counters are 32 bits wide and wrap;
- reading from user mode requires the PCR user-trace bit, and reads and
  resets cost a few instructions which the caller is expected to charge to
  the simulated clock (:data:`READ_COST_INSTRUCTIONS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

#: instruction cost of reading + resetting the PICs at user level; the
#: paper: "the counter overhead includes only several instructions for
#: reading and resetting the appropriate registers" (section 5).
READ_COST_INSTRUCTIONS = 6

#: default PIC register width (UltraSPARC PICs are 32 bits wide)
DEFAULT_WIDTH_BITS = 32
_WRAP = 1 << DEFAULT_WIDTH_BITS


class CounterEvent(Enum):
    """Events a PIC can be configured to count."""

    CYCLES = "cycles"
    INSTRUCTIONS = "instructions"
    ECACHE_REFS = "ecache_refs"
    ECACHE_HITS = "ecache_hits"
    ECACHE_MISSES = "ecache_misses"
    ECACHE_INVALIDATIONS = "ecache_invalidations"


class CounterAccessError(Exception):
    """Raised on a user-mode read with the PCR user-trace bit clear."""


@dataclass
class _Pic:
    event: CounterEvent
    wrap: int = _WRAP
    value: int = 0

    def add(self, event: CounterEvent, amount: int) -> None:
        if event is self.event:
            self.value = (self.value + amount) % self.wrap


class PerformanceCounters:
    """A per-processor PCR plus two PICs.

    The hardware exposes raw event counts only; everything the scheduler
    derives (per-interval miss counts) is computed in software from two
    reads, exactly as the paper's runtime does.
    """

    def __init__(
        self,
        pic0: CounterEvent = CounterEvent.ECACHE_REFS,
        pic1: CounterEvent = CounterEvent.ECACHE_HITS,
        user_access: bool = True,
        width_bits: int = DEFAULT_WIDTH_BITS,
    ) -> None:
        if width_bits < 1:
            raise ValueError("counter width must be at least one bit")
        self.width_bits = width_bits
        #: modulus of the registers; raw values live in [0, wrap)
        self.wrap = 1 << width_bits
        self._pics = (_Pic(pic0, self.wrap), _Pic(pic1, self.wrap))
        self.user_access = user_access
        self.reads = 0
        #: bumped on every PCR reprogramming; snapshot-holding views
        #: compare epochs to detect that their baseline is stale
        self.config_epoch = 0

    def configure(
        self,
        pic0: CounterEvent,
        pic1: CounterEvent,
        privileged: bool = False,
    ) -> None:
        """Reprogram the PCR event selectors; clears both counters.

        Only two events can be live at once -- the hardware constraint the
        paper works within.  Writing the PCR obeys the same access rule as
        :meth:`read`/:meth:`reset`: with the user-trace bit clear, a
        user-mode write traps instead of silently reprogramming the
        selectors and clearing both PICs.
        """
        if not privileged and not self.user_access:
            raise CounterAccessError(
                "PCR user-trace bit clear; user-mode PCR write traps"
            )
        self._pics = (_Pic(pic0, self.wrap), _Pic(pic1, self.wrap))
        self.config_epoch += 1

    @property
    def events(self) -> Tuple[CounterEvent, CounterEvent]:
        """The two events currently selected."""
        return (self._pics[0].event, self._pics[1].event)

    def record(self, event: CounterEvent, amount: int = 1) -> None:
        """Hardware-side: accumulate an event occurrence."""
        for pic in self._pics:
            pic.add(event, amount)

    def read(self, privileged: bool = False) -> Tuple[int, int]:
        """Read (PIC0, PIC1) from user or supervisor mode."""
        if not privileged and not self.user_access:
            raise CounterAccessError(
                "PCR user-trace bit clear; user-mode PIC read traps"
            )
        self.reads += 1
        return (self._pics[0].value, self._pics[1].value)

    def reset(self, privileged: bool = False) -> None:
        """Clear both counters (same access rules as :meth:`read`)."""
        if not privileged and not self.user_access:
            raise CounterAccessError(
                "PCR user-trace bit clear; user-mode PIC write traps"
            )
        for pic in self._pics:
            pic.value = 0


class MissCounterView:
    """Software view deriving per-interval miss counts from the PICs.

    This is the scheduler-facing API used at every context switch: it reads
    refs/hits, subtracts the values at the start of the scheduling interval
    (modulo the register width, so wraparound between reads is harmless as
    long as an interval accumulates fewer than ``wrap`` events), and
    reports the interval's miss count.  A glitched pair of reads in which
    the hit delta exceeds the ref delta -- physically impossible, so
    necessarily a wrap artefact or hardware fault -- is clamped to zero
    misses rather than reported as a negative count.

    An interval that accumulates ``wrap`` or more events cannot be
    distinguished from one that accumulated ``events % wrap`` -- the
    modulo subtraction silently under-reports it.  The view therefore
    keeps a conservative overflow-suspicion flag: a single-interval
    delta exceeding ``wrap // 2`` (or a hit delta exceeding the ref
    delta) is far more plausibly a wrapped register than real traffic,
    so it sets :attr:`last_overflow_suspect`, bumps
    :attr:`overflow_suspects`, and records a diagnostic string -- the
    runtime surfaces these so LFF never consumes a wrapped ``n``
    unnoticed (the scheduler still clamps the *value*; the flag is what
    makes the wrap visible instead of silent).
    """

    def __init__(self, counters: PerformanceCounters) -> None:
        if counters.events != (CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS):
            raise ValueError(
                "MissCounterView needs PIC0=ECACHE_REFS, PIC1=ECACHE_HITS; "
                f"got {counters.events}"
            )
        self._counters = counters
        self._wrap = counters.wrap
        self._last_refs, self._last_hits = counters.read()
        #: PCR configuration the snapshot belongs to; a mismatch at read
        #: time means configure() ran mid-interval and the snapshot no
        #: longer refers to the same events
        self._config_epoch = counters.config_epoch
        #: True when the most recent interval's deltas looked wrapped
        self.last_overflow_suspect = False
        #: intervals flagged as overflow-suspect since construction
        self.overflow_suspects = 0
        #: diagnostic string for the most recent suspect interval
        self.last_overflow_detail = ""

    def _flag_suspect(self, detail: str) -> None:
        self.last_overflow_suspect = True
        self.overflow_suspects += 1
        self.last_overflow_detail = detail

    def interval_misses(self) -> int:
        """Misses since the previous call (or construction); never negative.

        A ``configure()`` between the interval-start snapshot and this
        read would make the modulo subtraction compare counts of
        *different events* (and both PICs were cleared by the write), so
        the delta is garbage: the view detects the reprogramming via the
        PCR config epoch, re-baselines its snapshot, reports the interval
        as zero misses, and flags it suspect rather than returning the
        garbage delta.
        """
        counters = self._counters
        if counters.config_epoch != self._config_epoch:
            self._resync()
            self._flag_suspect(
                "PCR reprogrammed mid-interval (configure() cleared the "
                "PICs and may have switched events): snapshot invalidated; "
                "interval reported as 0 misses"
            )
            return 0
        if counters.events != (
            CounterEvent.ECACHE_REFS,
            CounterEvent.ECACHE_HITS,
        ):
            # epoch matched but the PICs are not counting refs/hits (a
            # reprogram before this view's construction raced it): every
            # interval is meaningless until reconfigured
            self._resync()
            self._flag_suspect(
                f"PICs configured for {counters.events}, not "
                "(ECACHE_REFS, ECACHE_HITS): interval reported as 0 misses"
            )
            return 0
        refs, hits = counters.read()
        d_refs = (refs - self._last_refs) % self._wrap
        d_hits = (hits - self._last_hits) % self._wrap
        self._last_refs, self._last_hits = refs, hits
        threshold = self._wrap // 2
        suspect = d_refs > threshold or d_hits > threshold or d_hits > d_refs
        self.last_overflow_suspect = suspect
        if suspect:
            self.overflow_suspects += 1
            self.last_overflow_detail = (
                f"counter deltas refs={d_refs} hits={d_hits} exceed "
                f"wrap/2={threshold} of a {self._counters.width_bits}-bit "
                "PIC (or hits > refs): interval likely wrapped; miss count "
                "under-reported"
            )
        return max(0, d_refs - d_hits)

    def _resync(self) -> None:
        """Re-baseline the snapshot against the current PCR programming."""
        self._last_refs, self._last_hits = self._counters.read()
        self._config_epoch = self._counters.config_epoch

    @property
    def read_cost_instructions(self) -> int:
        """Instruction cost the caller should charge per interval read."""
        return READ_COST_INSTRUCTIONS
