"""The simulated multiprocessor.

Ties together the per-cpu processors, one shared virtual memory, and a
coherence directory that knows which cpus cache which physical lines.  The
directory serves two purposes, both from section 5 of the paper:

- it prices Enterprise-5000 misses: 80 cycles "if the line is cached by
  another processor", 50 otherwise (and a flat 42 on the Ultra-1);
- it implements write invalidation, so that "data cached by one processor
  is modified by another" actually removes lines from remote caches.  The
  paper's *model* deliberately ignores invalidations (its counters cannot
  see them, section 3.4); the *simulated hardware* here still performs
  them, so the model faces the same unmodelled effects it faced on the
  real machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.machine.address import AddressSpace
from repro.machine.backend import BACKEND_NAMES, resolve_backend
from repro.machine.cache import AccessResult
from repro.machine.configs import MachineConfig
from repro.machine.processor import Processor
from repro.machine.tlb import TLB
from repro.machine.vm import PlacementPolicy, VirtualMemory


class LineDirectory:
    """Which cpus currently cache each physical line."""

    def __init__(self, num_cpus: int) -> None:
        self.num_cpus = num_cpus
        self._holders: Dict[int, Set[int]] = {}

    def add(self, cpu_id: int, plines: np.ndarray) -> None:
        holders = self._holders
        for pline in plines.tolist():
            holders.setdefault(pline, set()).add(cpu_id)

    def remove(self, cpu_id: int, plines: np.ndarray) -> None:
        holders = self._holders
        for pline in plines.tolist():
            cpus = holders.get(pline)
            if cpus is None:
                continue
            cpus.discard(cpu_id)
            if not cpus:
                del holders[pline]

    def holders(self, pline: int) -> Set[int]:
        """Cpus caching ``pline`` (possibly empty; do not mutate)."""
        return self._holders.get(pline, set())

    def held_by_other(self, pline: int, cpu_id: int) -> bool:
        """Whether any cpu other than ``cpu_id`` caches the line."""
        cpus = self._holders.get(pline)
        if not cpus:
            return False
        if cpu_id in cpus:
            return len(cpus) > 1
        return True

    def count_remote(self, plines: np.ndarray, cpu_id: int) -> int:
        """How many of ``plines`` some other cpu caches."""
        holders = self._holders
        count = 0
        for pline in plines.tolist():
            cpus = holders.get(pline)
            if not cpus:
                continue
            if cpu_id in cpus:
                if len(cpus) > 1:
                    count += 1
            else:
                count += 1
        return count

    def shared_with_others(self, plines: np.ndarray, cpu_id: int) -> np.ndarray:
        """The subset of ``plines`` cached by at least one other cpu."""
        mask = [self.held_by_other(int(p), cpu_id) for p in plines]
        return plines[np.asarray(mask, dtype=bool)] if plines.size else plines


class Machine:
    """An SMP: processors + shared VM + coherence directory.

    The runtime addresses the machine in *virtual* lines; translation and
    coherence happen here.  Each cpu keeps its own cycle clock; the runtime
    advances whichever cpu is furthest behind, giving a simple deterministic
    discrete-event interleaving.
    """

    def __init__(
        self,
        config: MachineConfig,
        placement: Optional[PlacementPolicy] = None,
        seed: int = 0,
        backend: str = "sim",
    ) -> None:
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown cache backend {backend!r}; expected one of "
                f"{BACKEND_NAMES}"
            )
        #: cache backend name: ``"sim"`` replays every reference through
        #: the per-cpu hierarchy behind the VM and coherence directory;
        #: ``"analytic"`` prices batches with the reuse-distance model on
        #: virtual lines, skipping translation, TLBs and coherence
        #: entirely (repro.machine.analytic)
        self.backend = backend
        self._analytic = backend == "analytic"
        self.config = config
        rng = np.random.default_rng(seed)
        self.address_space = AddressSpace(
            line_bytes=config.line_bytes, page_bytes=config.page_bytes
        )
        self.vm = VirtualMemory(
            cache_bytes=config.l2_bytes,
            page_bytes=config.page_bytes,
            line_bytes=config.line_bytes,
            policy=placement,
            rng=rng,
        )
        self.directory = LineDirectory(config.num_cpus)
        #: set while the scheduler/runtime touches its own data structures;
        #: devices configured for user-mode-only monitoring (the PCR's
        #: user/supervisor selection, section 2.2) consult this
        self.kernel_mode = False
        self.tlbs: List[Optional[TLB]] = [
            TLB() if config.model_tlb else None
            for _ in range(config.num_cpus)
        ]
        hierarchy_factory = resolve_backend(backend)
        self.cpus: List[Processor] = []
        for cpu_id in range(config.num_cpus):
            cpu = Processor(cpu_id, config, hierarchy=hierarchy_factory(config))
            if not self._analytic:
                # the directory prices remote misses and performs write
                # invalidation; the analytic backend models neither (the
                # paper's model ignores invalidations too, section 3.4),
                # so its cpus skip the listener plumbing entirely
                cpu.set_remote_probe(
                    lambda plines, _cpu=cpu_id: self.directory.count_remote(
                        plines, _cpu
                    )
                )
                cpu.l2.on_install(
                    lambda plines, _cpu=cpu_id: self.directory.add(
                        _cpu, plines
                    )
                )
                cpu.l2.on_evict(
                    lambda plines, _cpu=cpu_id: self.directory.remove(
                        _cpu, plines
                    )
                )
            self.cpus.append(cpu)

    # -- execution, in virtual lines --------------------------------------

    def touch(
        self, cpu_id: int, vlines: np.ndarray, write: bool = False
    ) -> AccessResult:
        """Touch virtual lines on a cpu; performs coherence on writes."""
        cpu = self.cpus[cpu_id]
        vlines = np.asarray(vlines, dtype=np.int64)
        if self._analytic:
            # the analytic backend prices batches in virtual-line space:
            # no TLB, no translation, no coherence -- that skipped work
            # is exactly where the sweep speedup comes from
            return cpu.touch_data(vlines, write=write)
        tlb = self.tlbs[cpu_id]
        if tlb is not None and vlines.size:
            vpages = np.unique(vlines // self.vm.lines_per_page)
            tlb_misses = tlb.access(vpages.tolist())
            if tlb_misses:
                cpu.cycles += tlb_misses * tlb.miss_penalty
        plines = self.vm.translate_lines(vlines)
        result = cpu.touch_data(plines, write=write)
        if write and self.config.num_cpus > 1:
            self._invalidate_remote_copies(cpu_id, plines)
        return result

    def fetch(self, cpu_id: int, vlines: np.ndarray) -> AccessResult:
        """Instruction-fetch virtual lines on a cpu."""
        vlines = np.asarray(vlines, dtype=np.int64)
        if self._analytic:
            return self.cpus[cpu_id].fetch_instructions(vlines)
        plines = self.vm.translate_lines(vlines)
        return self.cpus[cpu_id].fetch_instructions(plines)

    def compute(self, cpu_id: int, instructions: int) -> None:
        """Run non-memory instructions on a cpu."""
        self.cpus[cpu_id].compute(instructions)

    def _invalidate_remote_copies(self, writer: int, plines: np.ndarray) -> None:
        victims_by_cpu: Dict[int, List[int]] = {}
        holders = self.directory._holders
        for pline in plines.tolist():
            cpus = holders.get(pline)
            if not cpus or (writer in cpus and len(cpus) == 1):
                continue
            for cpu_id in sorted(cpus):
                if cpu_id != writer:
                    victims_by_cpu.setdefault(cpu_id, []).append(pline)
        for cpu_id, victims in victims_by_cpu.items():
            self.cpus[cpu_id].hierarchy.invalidate(
                np.asarray(victims, dtype=np.int64)
            )

    # -- clocks ------------------------------------------------------------

    def cycles(self, cpu_id: int) -> int:
        """Cycle clock of one cpu."""
        return self.cpus[cpu_id].cycles

    def time(self) -> int:
        """Machine completion time: the furthest-ahead cpu clock."""
        return max(cpu.cycles for cpu in self.cpus)

    def total_l2_misses(self) -> int:
        """Sum of E-cache misses over all cpus (the paper's headline metric)."""
        return sum(cpu.l2.stats.misses for cpu in self.cpus)

    def total_instructions(self) -> int:
        """Sum of instructions executed over all cpus."""
        return sum(cpu.instructions for cpu in self.cpus)

    def flush_all(self) -> None:
        """Flush every cpu's hierarchy (between workload phases)."""
        for cpu in self.cpus:
            cpu.hierarchy.flush()

    def snapshot(self) -> List[dict]:
        """Per-cpu counter snapshots for reports."""
        return [cpu.snapshot() for cpu in self.cpus]
