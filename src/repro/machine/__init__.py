"""Simulated hardware substrate.

This package is the Python stand-in for the paper's measurement platform: a
Sun Ultra-1 / Enterprise 5000 observed through Shade plus a custom cache
simulator (paper section 3.1).  It provides:

- :mod:`repro.machine.address` -- a shared virtual address space with region
  allocation (threads share one address space, as in the paper's model).
- :mod:`repro.machine.vm` -- virtual-to-physical page placement, including
  the Kessler-Hill hierarchical policy the paper simulates.
- :mod:`repro.machine.cache` -- direct-mapped and set-associative caches
  that report installed/evicted lines so footprints can be observed.
- :mod:`repro.machine.hierarchy` -- the Table 1 memory hierarchy (L1 I/D +
  unified external L2 with inclusion).
- :mod:`repro.machine.counters` -- UltraSPARC-style performance
  instrumentation counters (PIC/PCR).
- :mod:`repro.machine.processor` / :mod:`repro.machine.smp` -- processors
  with cycle accounting and the multiprocessor with an invalidation
  directory.
- :mod:`repro.machine.configs` -- the concrete Ultra-1 and E5000
  configurations from Table 1, plus a small configuration for tests.
"""

from repro.machine.address import AddressSpace, Region
from repro.machine.cache import AccessResult, DirectMappedCache, SetAssociativeCache
from repro.machine.configs import (
    E5000_8CPU,
    SMALL,
    ULTRA1,
    MachineConfig,
    MemoryTimings,
)
from repro.machine.counters import CounterEvent, PerformanceCounters
from repro.machine.hierarchy import CacheHierarchy
from repro.machine.processor import Processor
from repro.machine.smp import Machine
from repro.machine.vm import KesslerHillPlacement, NaivePlacement, VirtualMemory

__all__ = [
    "AccessResult",
    "AddressSpace",
    "CacheHierarchy",
    "CounterEvent",
    "DirectMappedCache",
    "E5000_8CPU",
    "KesslerHillPlacement",
    "Machine",
    "MachineConfig",
    "MemoryTimings",
    "NaivePlacement",
    "PerformanceCounters",
    "Processor",
    "Region",
    "SMALL",
    "SetAssociativeCache",
    "ULTRA1",
    "VirtualMemory",
]
