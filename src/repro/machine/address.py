"""Virtual address space and region allocation.

The paper's threads are "units of (possibly parallel) execution with
independent lifetimes and separate stacks that share the address space"
(section 2.3).  Workloads in this reproduction allocate named *regions*
(stacks, heap objects, shared arrays) out of one :class:`AddressSpace` and
touch them through the simulated cache hierarchy.

Addresses are plain integers.  A *line* is the unit of cache residency
(64 bytes on the UltraSPARC-1, Table 1) and a *page* is the unit of virtual
memory placement (8 KiB on Solaris/UltraSPARC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

#: Default line size in bytes (UltraSPARC-1 E-cache line, Table 1).
LINE_BYTES = 64
#: Default page size in bytes (Solaris on UltraSPARC).
PAGE_BYTES = 8192


class AllocationError(Exception):
    """Raised when an :class:`AddressSpace` cannot satisfy an allocation."""


@dataclass(frozen=True)
class Region:
    """A contiguous, named range of virtual addresses.

    Regions are the granularity at which workloads declare thread state and
    issue memory touches.  They are immutable; sub-ranges are expressed with
    :meth:`slice`.
    """

    name: str
    base: int
    size: int
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} must have non-negative base")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    @property
    def first_line(self) -> int:
        """Virtual line number of the first line overlapping the region."""
        return self.base // self.line_bytes

    @property
    def last_line(self) -> int:
        """Virtual line number of the last line overlapping the region."""
        return (self.end - 1) // self.line_bytes

    @property
    def num_lines(self) -> int:
        """Number of distinct cache lines the region overlaps."""
        return self.last_line - self.first_line + 1

    def lines(self) -> np.ndarray:
        """All virtual line numbers covered by the region, ascending."""
        return np.arange(self.first_line, self.last_line + 1, dtype=np.int64)

    def line_slice(self, start_line: int, count: int) -> np.ndarray:
        """Virtual line numbers for ``count`` lines starting at region-relative
        line index ``start_line``.

        The range is clamped to the region, so callers may over-ask near the
        end without error.
        """
        lo = self.first_line + max(0, start_line)
        hi = min(self.last_line + 1, lo + max(0, count))
        return np.arange(lo, hi, dtype=np.int64)

    def slice(self, offset: int, size: int, name: Optional[str] = None) -> "Region":
        """A sub-region of ``size`` bytes starting ``offset`` bytes in."""
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"slice [{offset}, {offset + size}) outside region {self.name!r} "
                f"of size {self.size}"
            )
        return Region(
            name=name or f"{self.name}[{offset}:{offset + size}]",
            base=self.base + offset,
            size=size,
            line_bytes=self.line_bytes,
        )

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the region."""
        return self.base <= addr < self.end

    def __len__(self) -> int:
        return self.size


@dataclass
class AddressSpace:
    """A shared virtual address space with a page-aligned bump allocator.

    All threads of a workload share one address space (the paper's
    programming model).  Allocation is page aligned so that distinct regions
    never share a page; this keeps the virtual-memory placement policies
    honest (a page belongs to exactly one region) and mirrors how the
    paper's workloads lay out stacks and heap arenas.
    """

    line_bytes: int = LINE_BYTES
    page_bytes: int = PAGE_BYTES
    base: int = PAGE_BYTES  # leave page 0 unmapped, as real systems do
    _next: int = field(init=False)
    _regions: Dict[str, Region] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.page_bytes % self.line_bytes != 0:
            raise ValueError("page size must be a multiple of line size")
        self._next = self.base

    @property
    def lines_per_page(self) -> int:
        """Cache lines per virtual page."""
        return self.page_bytes // self.line_bytes

    def allocate(self, name: str, size: int) -> Region:
        """Allocate a page-aligned region of at least ``size`` bytes.

        Region names must be unique within the address space; reusing a name
        is almost always a workload bug, so it raises.
        """
        if size <= 0:
            raise AllocationError(f"cannot allocate {size} bytes for {name!r}")
        if name in self._regions:
            raise AllocationError(f"region name {name!r} already allocated")
        base = self._next
        span = -(-size // self.page_bytes) * self.page_bytes  # round up
        self._next = base + span
        region = Region(name=name, base=base, size=size, line_bytes=self.line_bytes)
        self._regions[name] = region
        return region

    def allocate_lines(self, name: str, num_lines: int) -> Region:
        """Allocate a region spanning exactly ``num_lines`` cache lines."""
        return self.allocate(name, num_lines * self.line_bytes)

    def region(self, name: str) -> Region:
        """Look up a previously allocated region by name."""
        return self._regions[name]

    def regions(self) -> List[Region]:
        """All allocated regions in allocation order."""
        return list(self._regions.values())

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def bytes_allocated(self) -> int:
        """Total bytes reserved (including page-alignment padding)."""
        return self._next - self.base

    def page_of(self, addr: int) -> int:
        """Virtual page number containing ``addr``."""
        return addr // self.page_bytes

    def line_of(self, addr: int) -> int:
        """Virtual line number containing ``addr``."""
        return addr // self.line_bytes
