"""A per-processor TLB model.

The paper's introduction lists "locality effects (cache, TLB misses,
paging, etc.)" among the costs of fine-grained threading; its evaluation
concentrates on the E-cache, but on the UltraSPARC a dTLB miss costs tens
of cycles of trap handling, and thread placement affects TLB reuse the
same way it affects cache reuse: a thread resuming on the processor that
ran it last finds its page translations still resident.

The model is a fully associative, LRU, per-processor TLB over virtual
pages (the UltraSPARC-1's dTLB is 64-entry fully associative).  Disabled
by default (``MachineConfig.model_tlb``); the TLB ablation bench measures
how much of the locality policies' win extends to translations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

#: UltraSPARC-1 dTLB geometry
DEFAULT_ENTRIES = 64
#: approximate cycles of a software-handled TLB miss
DEFAULT_MISS_PENALTY = 30


class TLB:
    """Fully associative, LRU translation lookaside buffer."""

    def __init__(
        self,
        entries: int = DEFAULT_ENTRIES,
        miss_penalty: int = DEFAULT_MISS_PENALTY,
    ):
        if entries <= 0:
            raise ValueError("the TLB needs at least one entry")
        if miss_penalty <= 0:
            raise ValueError("the miss penalty must be positive cycles")
        self.entries = entries
        self.miss_penalty = miss_penalty
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, vpages: Iterable[int]) -> int:
        """Look up a batch of virtual pages; returns the miss count."""
        misses = 0
        resident = self._resident
        for vpage in vpages:
            vpage = int(vpage)
            if vpage in resident:
                resident.move_to_end(vpage)
                self.hits += 1
                continue
            misses += 1
            self.misses += 1
            resident[vpage] = None
            if len(resident) > self.entries:
                resident.popitem(last=False)
        return misses

    def contains(self, vpage: int) -> bool:
        """Whether a translation is resident (no LRU update)."""
        return vpage in self._resident

    def flush(self) -> int:
        """Drop all translations (e.g. on address-space switch); returns
        how many were resident."""
        count = len(self._resident)
        self._resident.clear()
        return count

    @property
    def occupancy(self) -> int:
        """Resident translations."""
        return len(self._resident)

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
