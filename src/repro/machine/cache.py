"""Cache simulators with per-line residency reporting.

The paper's measurement apparatus is a cache simulator that "understands"
context switches and preserves the association between cache lines and
threads, because hardware counters alone lose that association (section 3).
These simulators therefore report exactly which physical lines each access
batch installed and evicted, so an external tracer can maintain observed
per-thread footprints without the cache knowing anything about threads.

Two organisations are provided:

- :class:`DirectMappedCache` -- the organisation the analytical model
  targets ("large off-chip physical direct-mapped caches", section 2.1).
- :class:`SetAssociativeCache` -- the extension the paper mentions but does
  not build ("the developed model can be extended to the associative cache
  case"); used by the associativity ablation bench.

Caches operate on *physical line numbers* (already translated by
:class:`repro.machine.vm.VirtualMemory`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

#: Listener signature: called with arrays of physical line numbers.
LineListener = Callable[[np.ndarray], None]

_EMPTY = np.empty(0, dtype=np.int64)


def _net_effect(installed, evicted):
    """Reduce raw install/evict logs of one batch to their net residency
    effect.

    Within a batch a line can be installed and then evicted (or evicted
    and reinstalled); listeners receive whole batches, so they must see
    only the net change or their residency bookkeeping would depend on
    intra-batch ordering that batching discards.  Residency is binary, so
    the net change per line is +1, -1 or 0.
    """
    counts = {}
    for pline in installed:
        counts[pline] = counts.get(pline, 0) + 1
    for pline in evicted:
        counts[pline] = counts.get(pline, 0) - 1
    net_in = [p for p, c in counts.items() if c > 0]
    net_out = [p for p, c in counts.items() if c < 0]
    return (
        np.asarray(net_in, dtype=np.int64),
        np.asarray(net_out, dtype=np.int64),
    )


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access batch.

    ``installed``/``evicted`` are the *net* residency changes of the batch
    (see :func:`_net_effect`); ``miss_lines`` is the raw, ordered sequence
    of missed lines (length ``misses``), which the hierarchy forwards to
    the next level.
    """

    refs: int
    hits: int
    misses: int
    installed: np.ndarray
    evicted: np.ndarray
    writebacks: int = 0
    miss_lines: np.ndarray = field(default_factory=lambda: _EMPTY)


class CacheStats:
    """Cumulative counters shared by both cache organisations."""

    def __init__(self) -> None:
        self.refs = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.invalidations = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of references that missed (0 if no references yet)."""
        return self.misses / self.refs if self.refs else 0.0

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for reports."""
        return {
            "refs": self.refs,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
        }


class _BaseCache:
    """Residency bookkeeping and listener plumbing common to both caches."""

    def __init__(self, size_bytes: int, line_bytes: int) -> None:
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if size_bytes % line_bytes != 0:
            raise ValueError("cache size must be a whole number of lines")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self.stats = CacheStats()
        self._install_listeners: List[LineListener] = []
        self._evict_listeners: List[LineListener] = []

    def on_install(self, listener: LineListener) -> None:
        """Register a callback invoked with each batch of installed lines."""
        self._install_listeners.append(listener)

    def on_evict(self, listener: LineListener) -> None:
        """Register a callback invoked with each batch of evicted lines.

        Invalidations are reported through the same callback: for footprint
        accounting, a line leaving the cache is a line leaving the cache.
        """
        self._evict_listeners.append(listener)

    def _notify(self, installed: np.ndarray, evicted: np.ndarray) -> None:
        if installed.size:
            for listener in self._install_listeners:
                listener(installed)
        if evicted.size:
            for listener in self._evict_listeners:
                listener(evicted)

    # -- interface subclasses must implement ------------------------------

    def access(self, plines: np.ndarray, write: bool = False) -> AccessResult:
        """Access a batch of physical lines in order; returns the outcome."""
        raise NotImplementedError

    def invalidate(self, plines: np.ndarray) -> int:
        """Drop any resident copies of ``plines``; returns how many were."""
        raise NotImplementedError

    def resident_lines(self) -> np.ndarray:
        """Physical line numbers currently resident (unsorted)."""
        raise NotImplementedError

    def contains(self, pline: int) -> bool:
        """Whether a single physical line is resident."""
        raise NotImplementedError

    def flush(self) -> int:
        """Evict everything (used to flush state before a monitored phase,
        as the paper does for its 'work' threads in section 3.3); returns
        the number of lines evicted."""
        raise NotImplementedError


class DirectMappedCache(_BaseCache):
    """A physically indexed, physically tagged direct-mapped cache.

    The fast path handles the common case of a batch whose line indices are
    all distinct (e.g. a sweep over a region) with vectorised numpy; batches
    with intra-batch index collisions fall back to an ordered scalar loop so
    hit/miss counts stay exact.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64) -> None:
        super().__init__(size_bytes, line_bytes)
        self._resident = np.full(self.num_lines, -1, dtype=np.int64)
        self._dirty = np.zeros(self.num_lines, dtype=bool)
        #: power-of-two caches index with a mask instead of a modulo (the
        #: hardware's trick, and measurably cheaper per batch)
        n = self.num_lines
        self._index_mask = n - 1 if n & (n - 1) == 0 else None

    def index_of(self, pline: int) -> int:
        """Cache index a physical line maps to."""
        if self._index_mask is not None:
            return pline & self._index_mask
        return pline % self.num_lines

    def _indices(self, plines: np.ndarray) -> np.ndarray:
        if self._index_mask is not None:
            return plines & self._index_mask
        return plines % self.num_lines

    def access(self, plines: np.ndarray, write: bool = False) -> AccessResult:
        plines = np.asarray(plines, dtype=np.int64)
        if plines.size == 0:
            return AccessResult(0, 0, 0, _EMPTY, _EMPTY)
        idx = self._indices(plines)
        if idx.size == 1 or np.unique(idx).size == idx.size:
            result = self._access_vectorised(plines, idx, write)
        else:
            result = self._access_serial(plines, idx, write)
        stats = self.stats
        stats.refs += result.refs
        stats.hits += result.hits
        stats.misses += result.misses
        stats.writebacks += result.writebacks
        self._notify(result.installed, result.evicted)
        return result

    def _access_vectorised(
        self, plines: np.ndarray, idx: np.ndarray, write: bool
    ) -> AccessResult:
        hit_mask = self._resident[idx] == plines
        miss_idx = idx[~hit_mask]
        installed = plines[~hit_mask]
        old = self._resident[miss_idx]
        valid_old = old >= 0
        evicted = old[valid_old]
        writebacks = int(np.count_nonzero(self._dirty[miss_idx] & valid_old))
        self._resident[miss_idx] = installed
        self._dirty[miss_idx] = write
        if write:
            self._dirty[idx[hit_mask]] = True
        # distinct indices mean no intra-batch reinstall: raw == net
        return AccessResult(
            refs=plines.size,
            hits=int(np.count_nonzero(hit_mask)),
            misses=installed.size,
            installed=installed,
            evicted=evicted,
            writebacks=writebacks,
            miss_lines=installed,
        )

    def _access_serial(
        self, plines: np.ndarray, idx: np.ndarray, write: bool
    ) -> AccessResult:
        hits = 0
        installed: List[int] = []
        evicted: List[int] = []
        writebacks = 0
        resident = self._resident
        dirty = self._dirty
        for pline, i in zip(plines.tolist(), idx.tolist()):
            if resident[i] == pline:
                hits += 1
                if write:
                    dirty[i] = True
                continue
            old = resident[i]
            if old >= 0:
                evicted.append(old)
                if dirty[i]:
                    writebacks += 1
            resident[i] = pline
            dirty[i] = write
            installed.append(pline)
        net_in, net_out = _net_effect(installed, evicted)
        return AccessResult(
            refs=plines.size,
            hits=hits,
            misses=len(installed),
            installed=net_in,
            evicted=net_out,
            writebacks=writebacks,
            miss_lines=np.asarray(installed, dtype=np.int64),
        )

    def invalidate(self, plines: np.ndarray) -> int:
        plines = np.asarray(plines, dtype=np.int64)
        if plines.size == 0:
            return 0
        idx = self._indices(plines)
        match = self._resident[idx] == plines
        victims = plines[match]
        self._resident[idx[match]] = -1
        self._dirty[idx[match]] = False
        self.stats.invalidations += victims.size
        self._notify(_EMPTY, victims)
        return int(victims.size)

    def resident_lines(self) -> np.ndarray:
        return self._resident[self._resident >= 0]

    def contains(self, pline: int) -> bool:
        return bool(self._resident[self.index_of(pline)] == pline)

    def flush(self) -> int:
        victims = self.resident_lines().copy()
        self._resident[:] = -1
        self._dirty[:] = False
        self._notify(_EMPTY, victims)
        return int(victims.size)


class SetAssociativeCache(_BaseCache):
    """An LRU set-associative cache (the model-extension case).

    ``ways=1`` degenerates to direct-mapped behaviour and is checked against
    :class:`DirectMappedCache` by the property tests.

    The simulator state is kept in plain per-set Python lists rather than
    numpy arrays: the access loop is inherently per-reference (LRU state
    changes between references), and element-wise numpy operations on
    ``ways``-sized rows cost an order of magnitude more than list
    scans at the associativities that occur in practice (2-16).  The
    ``cache_assoc_access`` benchmark in ``repro.bench`` guards this.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 4) -> None:
        super().__init__(size_bytes, line_bytes)
        if ways <= 0 or self.num_lines % ways != 0:
            raise ValueError("ways must divide the number of lines")
        self.ways = ways
        self.num_sets = self.num_lines // ways
        # per set: tags (-1 = empty), dirty flags, LRU stamps
        self._tags: List[List[int]] = [
            [-1] * ways for _ in range(self.num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * ways for _ in range(self.num_sets)
        ]
        self._stamp: List[List[int]] = [
            [0] * ways for _ in range(self.num_sets)
        ]
        self._clock = 0

    def access(self, plines: np.ndarray, write: bool = False) -> AccessResult:
        plines = np.asarray(plines, dtype=np.int64)
        hits = 0
        installed: List[int] = []
        evicted: List[int] = []
        writebacks = 0
        num_sets = self.num_sets
        tags = self._tags
        dirty = self._dirty
        stamp = self._stamp
        clock = self._clock
        for pline in plines.tolist():
            s = pline % num_sets
            clock += 1
            row = tags[s]
            try:
                w = row.index(pline)
                hits += 1
            except ValueError:
                try:
                    w = row.index(-1)
                except ValueError:
                    srow = stamp[s]
                    w = srow.index(min(srow))
                    evicted.append(row[w])
                    if dirty[s][w]:
                        writebacks += 1
                row[w] = pline
                dirty[s][w] = False
                installed.append(pline)
            stamp[s][w] = clock
            if write:
                dirty[s][w] = True
        self._clock = clock
        net_in, net_out = _net_effect(installed, evicted)
        result = AccessResult(
            refs=plines.size,
            hits=hits,
            misses=len(installed),
            installed=net_in,
            evicted=net_out,
            writebacks=writebacks,
            miss_lines=np.asarray(installed, dtype=np.int64),
        )
        stats = self.stats
        stats.refs += result.refs
        stats.hits += result.hits
        stats.misses += result.misses
        stats.writebacks += result.writebacks
        self._notify(result.installed, result.evicted)
        return result

    def invalidate(self, plines: np.ndarray) -> int:
        victims: List[int] = []
        for pline in np.asarray(plines, dtype=np.int64).tolist():
            s = pline % self.num_sets
            row = self._tags[s]
            try:
                w = row.index(pline)
            except ValueError:
                continue
            row[w] = -1
            self._dirty[s][w] = False
            victims.append(pline)
        self.stats.invalidations += len(victims)
        self._notify(_EMPTY, np.asarray(victims, dtype=np.int64))
        return len(victims)

    def resident_lines(self) -> np.ndarray:
        flat = [tag for row in self._tags for tag in row if tag >= 0]
        return np.asarray(flat, dtype=np.int64)

    def contains(self, pline: int) -> bool:
        return pline in self._tags[pline % self.num_sets]

    def flush(self) -> int:
        victims = self.resident_lines()
        ways = self.ways
        for s in range(self.num_sets):
            self._tags[s] = [-1] * ways
            self._dirty[s] = [False] * ways
            self._stamp[s] = [0] * ways
        self._notify(_EMPTY, victims)
        return int(victims.size)
