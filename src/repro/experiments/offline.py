"""Off-line trace analysis vs the on-line model (paper section 2.1).

The pre-history of the paper's model: Thiebaut & Stone needed footprints
as *inputs*; Agarwal et al. said they could be inferred "by analyzing
collected program traces off-line"; Falsafi & Wood extracted them from
repeated runs with cache flushes.  The paper's pitch is that an on-line
model fed by one counter value replaces all of that.

This experiment runs a monitored application three ways and compares:

- **observed**: the ground-truth tracer (what the paper's simulator saw);
- **on-line model**: ``N(1 − kⁿ)`` from the per-interval miss counts --
  storage cost: one precomputed table shared by all threads;
- **off-line replay**: record the thread's full reference trace, then
  replay it through a private direct-mapped cache -- storage cost: eight
  bytes per reference.

The off-line replay operates on *virtual* lines (a trace collector does
not see the VM's physical placement), so for conflict-heavy layouts it
mispredicts in its own way -- an extra argument the paper did not need to
make.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.machine.configs import ULTRA1
from repro.machine.smp import Machine
from repro.parallel import (
    ClusterConfig,
    ProgressFn,
    ResultCache,
    Shard,
    merged_values,
    run_shards,
)
from repro.sched.fcfs import FCFSScheduler
from repro.sim.driver import _AnalyticFootprintProbe, _WorkThreadSampler
from repro.sim.report import format_table
from repro.sim.trace import (
    ReferenceTraceRecorder,
    TracingRuntimeAdapter,
    footprint_curve_from_trace,
)
from repro.sim.tracer import FootprintTracer
from repro.threads.runtime import Runtime
from repro.workloads import MONITORED_APPS


def _offline_shard(
    app: str, seed: int, machine_backend: str = "sim"
) -> Dict[str, float]:
    """Worker entry point: the sweep for one monitored app."""
    return _run_one_app(app, seed, machine_backend=machine_backend)


def run_offline_comparison(
    apps: Sequence[str] = ("merge", "barnes"),
    seed: int = 0,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    backend: str = "local",
    cache: Optional[ResultCache] = None,
    cluster: Optional[ClusterConfig] = None,
    machine_backend: str = "sim",
) -> Dict[str, Dict[str, float]]:
    """Per app: observed-vs-model MAE, observed-vs-replay MAE, and costs.

    Each app's run is independent given (app, seed), so with
    ``jobs > 1`` the sweep fans out through :mod:`repro.parallel`; the
    merge reassembles the dict in ``apps`` order, bit-identical to the
    serial sweep.  ``backend="cluster"`` runs apps on dispatch worker
    nodes and ``cache`` resumes an interrupted sweep from the on-disk
    result cache -- neither can change the merged report.

    ``backend`` here selects *dispatch* (local/cluster);
    ``machine_backend`` selects the *cache* backend (sim/analytic, see
    docs/MODEL.md "The analytic backend") and is part of each shard's
    cache key so cached sim results never answer an analytic sweep.
    """
    shards = [
        Shard(
            index=i,
            key=f"offline/{machine_backend}/{name}",
            fn="repro.experiments.offline:_offline_shard",
            params={
                "app": name,
                "seed": seed,
                "machine_backend": machine_backend,
            },
        )
        for i, name in enumerate(apps)
    ]
    outcomes = run_shards(
        shards, jobs=jobs, progress=progress,
        backend=backend, cache=cache, cluster=cluster,
    )
    return {
        name: metrics
        for name, metrics in zip(apps, merged_values(outcomes))
    }


def _run_one_app(
    name: str, seed: int, machine_backend: str = "sim"
) -> Dict[str, float]:
    """The three-way comparison for one app (see the module docstring)."""
    app = MONITORED_APPS[name]()
    config = ULTRA1
    machine = Machine(config, seed=seed, backend=machine_backend)
    runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
    if machine_backend == "analytic":
        tracer = _AnalyticFootprintProbe(machine)
    else:
        tracer = FootprintTracer(machine)
    sampler = _WorkThreadSampler(machine, tracer)
    recorder = ReferenceTraceRecorder(max_total_refs=20_000_000,
                                      strict=False)
    TracingRuntimeAdapter(runtime, recorder)
    runtime.add_observer(tracer)
    runtime.add_observer(sampler)

    app.setup(runtime)
    init = app.init_body()
    if init is not None:
        runtime.at_create(init, name="init")
        runtime.run()
    machine.flush_all()
    work_tid = runtime.at_create(app.work_body(), name="work")
    runtime.declare_state(work_tid, app.state_regions())
    sampler.arm(work_tid)
    runtime.run()

    misses = np.asarray(sampler.misses, dtype=np.int64)
    observed = np.asarray(sampler.observed, dtype=float)
    n_cache = config.l2_lines
    k = (n_cache - 1) / n_cache
    online = n_cache * (1.0 - k ** misses.astype(float))

    trace = recorder.trace(work_tid)
    replay_x, replay_y = footprint_curve_from_trace(trace, n_cache)
    # align the replay curve to the sampler's miss positions
    if replay_x.size:
        aligned = np.interp(misses, replay_x, replay_y)
    else:
        aligned = np.zeros_like(observed)

    return {
        "online_mae": float(np.mean(np.abs(online - observed))),
        "offline_mae": float(np.mean(np.abs(aligned - observed))),
        "trace_bytes": recorder.storage_bytes,
        "model_bytes": 8 * (16 * n_cache + 1 + n_cache),  # k^n + log F
        "trace_truncated": recorder.truncated,
    }


def format_offline_comparison(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                r["online_mae"],
                r["offline_mae"],
                f"{r['trace_bytes'] / 1024:.0f} KiB",
                f"{r['model_bytes'] / 1024:.0f} KiB",
            )
        )
    return format_table(
        [
            "app",
            "on-line model MAE",
            "off-line replay MAE",
            "trace storage",
            "model tables",
        ],
        rows,
        title="Off-line trace analysis vs the on-line model (section 2.1 "
        "methodology comparison)",
    )
