"""Figure 9: performance impact of locality scheduling on the 8-cpu
Enterprise 5000.

Expected shape: "locality scheduling eliminates 60-80% of all E-cache
misses for all considered applications.  The overall performance is
improved by factors of 1.45-2.12."  On the SMP the baseline FCFS queue
scatters rescheduled threads across processors, so even workloads whose
1-cpu FCFS order was good (photo) now benefit enormously.
"""

from __future__ import annotations

from typing import Dict

from repro.machine.configs import E5000_8CPU
from repro.experiments.fig8 import format_results, run_policies
from repro.sim.metrics import PerfResult


def run_fig9(seed: int = 0, backend: str = "sim") -> Dict[str, Dict[str, PerfResult]]:
    """The 8-processor (E5000) sweep."""
    return run_policies(E5000_8CPU, seed=seed, backend=backend)


def format_fig9(results) -> str:
    return format_results(
        results, "Figure 9: locality scheduling on the 8-cpu Sun E5000"
    )
