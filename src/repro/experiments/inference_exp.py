"""Evaluating runtime sharing inference (the section 7 extension).

The showcase workload is producer/consumer pairs: the producer writes a
multi-page buffer, hands it to the consumer, and waits for it back.
Writes invalidate the consumer's cached copy -- the effect the paper's
model deliberately ignores (section 3.4) -- so counter-driven footprints
alone mis-place the consumer, while an ``at_share`` edge (user-written or
inferred) sends it to the producer's processor where the fresh buffer
lives.

Four configurations are compared on the 8-cpu E5000:

1. FCFS (baseline);
2. LFF with no annotations (counters only);
3. LFF with user annotations (the paper's programming model);
4. LFF with CML-based inference and no annotations (section 7's vision).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.inference import SharingInference
from repro.machine.configs import E5000_8CPU, MachineConfig
from repro.machine.smp import Machine
from repro.sched import FCFSScheduler, make_lff
from repro.sim.report import format_table
from repro.threads.events import Compute, SemPost, SemWait, Touch
from repro.threads.runtime import Runtime
from repro.threads.sync import Semaphore


def build_producer_consumer(
    runtime: Runtime,
    pairs: int = 16,
    buffer_lines: int = 260,
    rounds: int = 12,
    annotate: bool = False,
) -> None:
    """Producer/consumer pairs ping-ponging multi-page buffers."""
    for pair in range(pairs):
        buffer_region = runtime.alloc_lines(f"buf{pair}", buffer_lines)
        to_consumer = Semaphore(0, name=f"to-cons-{pair}")
        to_producer = Semaphore(0, name=f"to-prod-{pair}")

        def producer(buf=buffer_region, down=to_consumer, up=to_producer):
            for _ in range(rounds):
                yield Touch(buf.lines(), write=True)  # fill the buffer
                yield Compute(800)
                yield SemPost(down)
                yield SemWait(up)

        def consumer(buf=buffer_region, down=to_consumer, up=to_producer):
            for _ in range(rounds):
                yield SemWait(down)
                yield Touch(buf.lines())  # read what was just written
                yield Compute(800)
                yield SemPost(up)

        tid_p = runtime.at_create(producer, name=f"prod{pair}")
        tid_c = runtime.at_create(consumer, name=f"cons{pair}")
        if annotate:
            runtime.at_share(tid_p, tid_c, 1.0)
            runtime.at_share(tid_c, tid_p, 1.0)


def run_inference_comparison(
    config: MachineConfig = E5000_8CPU,
    probe_pages: int = 0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """The four configurations; returns per-config miss/cycle/edge stats."""

    def run(scheduler, annotate: bool, infer: bool):
        machine = Machine(config, seed=seed)
        runtime = Runtime(machine, scheduler)
        inference: Optional[SharingInference] = None
        if infer:
            inference = SharingInference(
                runtime, min_q=0.2, probe_pages=probe_pages, seed=seed
            )
        build_producer_consumer(runtime, annotate=annotate)
        runtime.run()
        return {
            "misses": machine.total_l2_misses(),
            "cycles": machine.time(),
            "edges": inference.edges_written if inference else 0,
        }

    return {
        "fcfs": run(FCFSScheduler(), False, False),
        "lff": run(make_lff(), False, False),
        "lff+annotations": run(make_lff(), True, False),
        "lff+inference": run(make_lff(), False, True),
    }


def format_inference_comparison(results: Dict[str, Dict[str, float]]) -> str:
    base = results["fcfs"]
    rows = []
    for name, stats in results.items():
        rows.append(
            (
                name,
                stats["misses"],
                100.0 * (1 - stats["misses"] / base["misses"]),
                base["cycles"] / stats["cycles"],
                stats["edges"],
            )
        )
    return format_table(
        ["configuration", "E-misses", "eliminated %", "rel perf",
         "inferred edges"],
        rows,
        title="Section 7 extension: CML sharing inference "
        "(producer/consumer pairs, 8-cpu E5000)",
    )
