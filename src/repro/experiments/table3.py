"""Table 3: the cost of priority updates, in floating-point instructions.

The schemes are built so that independent threads cost exactly *zero*;
the blocking thread and each dependent cost a handful of FP instructions
using the precomputed ``k**n`` and ``log F`` tables.  The numbers here
are *measured* from the implementation's own operation tally, not
asserted: we run a small workload through each scheme and report the mean
FP instructions per update of each kind.
"""

from __future__ import annotations

from typing import Dict

from repro.core.model import SharedStateModel
from repro.core.priorities import CRTScheme, LFFScheme, UpdateCost
from repro.core.sharing import SharingGraph
from repro.sim.report import format_table


def run_table3(
    num_lines: int = 8192, threads: int = 64, rounds: int = 50, fanout: int = 3
) -> Dict[str, Dict[str, float]]:
    """Exercise both schemes on a synthetic dependency graph and report
    the measured per-update FP costs."""
    results = {}
    for scheme_cls in (LFFScheme, CRTScheme):
        model = SharedStateModel(num_lines)
        graph = SharingGraph()
        for tid in range(threads):
            for d in range(1, fanout + 1):
                graph.share(tid, (tid + d) % threads, 1.0 / (d + 1))
        scheme = scheme_cls(model, graph, num_cpus=1)
        for tid in range(threads):
            scheme.ensure_entry(0, tid)
        for r in range(rounds):
            tid = r % threads
            scheme.on_dispatch(0, tid)
            scheme.on_block(0, tid, 100 + r)
        results[scheme.name] = scheme.cost.per_update()
    return results


def format_table3(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for policy, costs in results.items():
        rows.append(
            (
                policy,
                costs["blocking"],
                costs["dependent"],
                costs["independent"],
            )
        )
    return format_table(
        ["policy", "blocking thread", "dependent thread", "independent thread"],
        rows,
        title="Table 3: priority update costs (FP instructions per thread)",
    )
