"""Figure 4: the random-memory-walk microbenchmark.

Four panels, all on a single simulated UltraSPARC-1 (N = 8192 E-cache
lines), all driving the machine directly (no thread runtime -- the walk
is uninterrupted):

a) the executing walker's footprint growth for several initial footprints;
b) decay of sleeping *independent* threads' footprints;
c) a sleeping thread half of whose state is shared with the walker, for
   several initial footprints (may grow or decay toward q*N);
d) sleeping threads with different sharing coefficients q (asymptote q*N).

The walker touches uniformly random lines of a region 8x the cache -- the
regime that satisfies the model's independence assumption exactly, so the
paper reports (and this reproduction confirms) excellent agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.model import SharedStateModel
from repro.machine.configs import ULTRA1, MachineConfig
from repro.machine.smp import Machine
from repro.sim.tracer import FootprintTracer

#: walker region size as a multiple of the cache
WALK_SPAN = 8
#: touches per sampling batch
BATCH = 512


@dataclass
class Curve:
    """One predicted-vs-observed footprint trace."""

    label: str
    misses: np.ndarray
    observed: np.ndarray
    predicted: np.ndarray

    @property
    def mean_relative_error(self) -> float:
        """Mean |pred - obs| / N over the trace (N from the run config)."""
        if self.misses.size == 0:
            return 0.0
        scale = max(1.0, float(self.predicted.max()))
        return float(np.mean(np.abs(self.predicted - self.observed)) / scale)


class _WalkBench:
    """One microbenchmark instance: a machine, a walker, and sleepers."""

    def __init__(self, config: MachineConfig = ULTRA1, seed: int = 0):
        self.machine = Machine(config, seed=seed)
        self.tracer = FootprintTracer(self.machine)
        self.model = SharedStateModel(config.l2_lines)
        self.n = config.l2_lines
        self.walker = self.machine.address_space.allocate_lines(
            "walker", WALK_SPAN * self.n
        )
        self.rng = np.random.default_rng(seed + 1)
        self._next_tid = 1

    def declare(self, lines: np.ndarray) -> int:
        """Register a synthetic thread owning ``lines``; returns its tid."""
        tid = self._next_tid
        self._next_tid += 1
        self.tracer.on_state_declared(tid, lines)
        return tid

    def pretouch(self, lines: np.ndarray) -> None:
        """Establish an initial footprint (before the measured walk)."""
        self.machine.touch(0, lines)

    def walk(
        self, total_touches: int, watch: List[int]
    ) -> Dict[int, Curve]:
        """Random-walk and sample each watched tid per batch."""
        samples: Dict[int, List[Tuple[int, int]]] = {t: [] for t in watch}
        cpu = self.machine.cpus[0]
        base = cpu.l2.stats.misses
        lines = self.walker.lines()
        remaining = total_touches
        while remaining > 0:
            take = min(BATCH, remaining)
            batch = self.rng.choice(lines, size=take, replace=True)
            self.machine.touch(0, batch)
            remaining -= take
            n = cpu.l2.stats.misses - base
            for tid in watch:
                samples[tid].append((n, self.tracer.observed(0, tid)))
        curves = {}
        for tid, pts in samples.items():
            arr = np.asarray(pts, dtype=np.int64)
            curves[tid] = (arr[:, 0], arr[:, 1])
        return curves

    def consecutive_lines(self, start: int, count: int) -> np.ndarray:
        """Walker lines [start, start+count): consecutive lines have
        distinct cache indices for count <= N, so pre-touching installs
        exactly ``count`` resident lines."""
        return self.walker.lines()[start : start + count]


def run_fig4a(
    initial_footprints=(0, 2000, 4000, 6000), touches: int = 30_000, seed: int = 0
) -> List[Curve]:
    """Panel a: the executing thread's own footprint."""
    curves = []
    for s0 in initial_footprints:
        bench = _WalkBench(seed=seed)
        tid = bench.declare(bench.walker.lines())
        if s0:
            bench.pretouch(bench.consecutive_lines(0, s0))
        raw = bench.walk(touches, [tid])[tid]
        misses, observed = raw
        predicted = bench.model.expected_running(float(s0), misses)
        curves.append(Curve(f"S0={s0}", misses, observed, np.asarray(predicted)))
    return curves


def run_fig4b(
    initial_footprints=(2000, 4000, 6000, 8000), touches: int = 30_000,
    seed: int = 0,
) -> List[Curve]:
    """Panel b: decay of sleeping independent threads.

    One machine per sleeper: pre-touching several sleepers into a single
    direct-mapped cache would evict parts of the earlier ones wherever
    their indices collide, leaving initial footprints below the nominal
    S0 the prediction starts from.
    """
    curves = []
    for i, s0 in enumerate(initial_footprints):
        bench = _WalkBench(seed=seed)
        region = bench.machine.address_space.allocate_lines(f"sleeper-{i}", s0)
        tid = bench.declare(region.lines())
        bench.pretouch(region.lines())
        misses, observed = bench.walk(touches, [tid])[tid]
        predicted = bench.model.expected_independent(float(s0), misses)
        curves.append(Curve(f"S0={s0}", misses, observed, np.asarray(predicted)))
    return curves


def run_fig4c(
    initial_footprints=(1000, 3000, 6000),
    state_lines: int = 40_000,
    touches: int = 60_000,
    seed: int = 0,
) -> List[Curve]:
    """Panel c: a sleeper half of whose state is shared with the walker."""
    curves = []
    shared = state_lines // 2
    for s0 in initial_footprints:
        bench = _WalkBench(seed=seed)
        q = shared / bench.walker.num_lines
        private = bench.machine.address_space.allocate_lines(
            "sleeper-private", state_lines - shared
        )
        state = np.concatenate(
            [bench.consecutive_lines(0, shared), private.lines()]
        )
        tid = bench.declare(state)
        # initial footprint: proportional prefix of shared and private parts
        pre_shared = min(s0 // 2, shared)
        pre_private = s0 - pre_shared
        bench.pretouch(bench.consecutive_lines(0, pre_shared))
        bench.pretouch(private.lines()[:pre_private])
        misses, observed = bench.walk(touches, [tid])[tid]
        predicted = bench.model.expected_dependent(float(s0), q, misses)
        curves.append(
            Curve(f"S0={s0},q={q:.2f}", misses, observed, np.asarray(predicted))
        )
    return curves


def run_fig4d(
    coefficients=(0.125, 0.25, 0.5, 1.0),
    initial_footprint: int = 2000,
    touches: int = 60_000,
    seed: int = 0,
) -> List[Curve]:
    """Panel d: sleepers with different sharing coefficients."""
    curves = []
    for q in coefficients:
        bench = _WalkBench(seed=seed)
        shared = int(q * bench.walker.num_lines)
        state = bench.consecutive_lines(0, shared)
        tid = bench.declare(state)
        s0 = min(initial_footprint, shared)
        bench.pretouch(bench.consecutive_lines(0, s0))
        misses, observed = bench.walk(touches, [tid])[tid]
        predicted = bench.model.expected_dependent(float(s0), q, misses)
        curves.append(
            Curve(f"q={q}", misses, observed, np.asarray(predicted))
        )
    return curves


def run_fig4(seed: int = 0) -> Dict[str, List[Curve]]:
    """All four panels."""
    return {
        "a_executing": run_fig4a(seed=seed),
        "b_independent": run_fig4b(seed=seed),
        "c_half_shared": run_fig4c(seed=seed),
        "d_coefficients": run_fig4d(seed=seed),
    }
