"""Figure 6: average E-cache misses per 1000 instructions over time.

"Unblocking threads usually experience bursts of reload transient misses
followed by a period of a relatively stable number of misses" -- the MPI
series should start high (the reload transient) and settle."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.sim.driver import run_monitored
from repro.sim.metrics import MonitoredResult, mpi_series
from repro.sim.report import format_series, format_table
from repro.workloads import MONITORED_APPS


def run_fig6(
    apps: List[str] = None,
    window: int = 40,
    seed: int = 0,
    backend: str = "sim",
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """MPI-per-1000-instructions series for each app."""
    names = apps or list(MONITORED_APPS)
    series = {}
    for name in names:
        res = run_monitored(MONITORED_APPS[name](), seed=seed, backend=backend)
        series[name] = mpi_series(res.instructions, res.misses, window=window)
    return series


def transient_ratio(instructions: np.ndarray, mpi: np.ndarray) -> float:
    """Ratio of early MPI to late MPI (>1 means a visible reload burst)."""
    if mpi.size < 10:
        return 1.0
    head = float(np.mean(mpi[: max(1, mpi.size // 10)]))
    tail = float(np.mean(mpi[-max(1, mpi.size // 4):]))
    return head / max(tail, 1e-9)


def format_fig6(series) -> str:
    rows = []
    for name, (instr, mpi) in series.items():
        if mpi.size == 0:
            rows.append((name, 0.0, 0.0, 0.0))
            continue
        rows.append(
            (
                name,
                float(np.mean(mpi[: max(1, mpi.size // 10)])),
                float(np.mean(mpi[-max(1, mpi.size // 4):])),
                transient_ratio(instr, mpi),
            )
        )
    table = format_table(
        ["app", "MPI(early)", "MPI(late)", "burst ratio"],
        rows,
        title="Figure 6: E-cache misses per 1000 instructions",
    )
    details = []
    for name, (instr, mpi) in series.items():
        details.append(f"{name}: {format_series(instr, mpi)}")
    return table + "\n" + "\n".join(details)
