"""Table 5: CRT relative to FCFS, on 1 cpu and on 8 cpus.

The paper's numbers:

========  ================  ================  ==========  ==========
workload  misses elim. 1cpu misses elim. 8cpu perf 1cpu   perf 8cpu
========  ================  ================  ==========  ==========
tasks     92%               64%               2.38        1.45
merge     57%               77%               1.59        1.50
photo     -1%               71%               0.97        2.12
tsp       12%               73%               1.04        1.51
========  ================  ================  ==========  ==========

("Numbers for LFF are quite similar.")  This module composes the Figure 8
and Figure 9 runs into the same rows; the shape targets are: tasks huge on
1 cpu, photo slightly *negative* on 1 cpu but large on 8, tsp small on 1
cpu (compulsory misses), everything substantial on 8 cpus.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.sim.metrics import PerfResult
from repro.sim.report import format_table

#: the paper's Table 5, for side-by-side reporting
PAPER_TABLE5 = {
    "tasks": {"elim_1cpu": 92.0, "elim_8cpu": 64.0, "perf_1cpu": 2.38, "perf_8cpu": 1.45},
    "merge": {"elim_1cpu": 57.0, "elim_8cpu": 77.0, "perf_1cpu": 1.59, "perf_8cpu": 1.50},
    "photo": {"elim_1cpu": -1.0, "elim_8cpu": 71.0, "perf_1cpu": 0.97, "perf_8cpu": 2.12},
    "tsp": {"elim_1cpu": 12.0, "elim_8cpu": 73.0, "perf_1cpu": 1.04, "perf_8cpu": 1.51},
}


def run_table5(
    policy: str = "crt", seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Measured CRT-vs-FCFS summary across both machines."""
    uni = run_fig8(seed=seed)
    smp = run_fig9(seed=seed)
    table = {}
    for wl_name in uni:
        base1, res1 = uni[wl_name]["fcfs"], uni[wl_name][policy]
        base8, res8 = smp[wl_name]["fcfs"], smp[wl_name][policy]
        table[wl_name] = {
            "elim_1cpu": 100.0 * res1.misses_eliminated_vs(base1),
            "elim_8cpu": 100.0 * res8.misses_eliminated_vs(base8),
            "perf_1cpu": res1.speedup_vs(base1),
            "perf_8cpu": res8.speedup_vs(base8),
        }
    return table


def format_table5(measured: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for wl_name, m in measured.items():
        paper = PAPER_TABLE5.get(wl_name, {})
        rows.append(
            (
                wl_name,
                f"{m['elim_1cpu']:.0f}% ({paper.get('elim_1cpu', float('nan')):.0f}%)",
                f"{m['elim_8cpu']:.0f}% ({paper.get('elim_8cpu', float('nan')):.0f}%)",
                f"{m['perf_1cpu']:.2f} ({paper.get('perf_1cpu', float('nan')):.2f})",
                f"{m['perf_8cpu']:.2f} ({paper.get('perf_8cpu', float('nan')):.2f})",
            )
        )
    return format_table(
        [
            "workload",
            "E-miss elim 1cpu (paper)",
            "E-miss elim 8cpu (paper)",
            "rel perf 1cpu (paper)",
            "rel perf 8cpu (paper)",
        ],
        rows,
        title="Table 5: CRT relative to FCFS -- measured (paper)",
    )
