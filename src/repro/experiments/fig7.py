"""Figure 7: the applications whose footprints the model overestimates.

"For two considered applications, the footprints in the cache predicted
by the model were substantially larger than those observed" -- the Sather
typechecker (long run lengths, nonstationary behaviour) and raytrace
(conflict misses between bursts).

The module also evaluates the paper's proposed mitigation (section 3.4):
monitoring MPI on-line and switching prediction heuristics when a thread
turns nonstationary -- implemented as a simple freeze of footprint growth
once interval MPI falls below a threshold.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.sim.driver import run_monitored
from repro.sim.metrics import MonitoredResult
from repro.sim.report import format_table
from repro.workloads import ANOMALOUS_APPS


def run_fig7(seed: int = 0, backend: str = "sim") -> Dict[str, MonitoredResult]:
    """Trace the two anomalous applications."""
    return {
        name: run_monitored(cls(), seed=seed, backend=backend)
        for name, cls in ANOMALOUS_APPS.items()
    }


def adaptive_prediction(
    result: MonitoredResult, mpi_threshold: float = 25.0, window: int = 50
) -> np.ndarray:
    """Re-predict with the paper's suggested MPI heuristic switch.

    While windowed MPI (misses per 1000 instructions) stays above the
    threshold the standard model runs; once it drops below (nonstationary
    steady state, or conflict-dominated churn), footprint growth is frozen
    at its current predicted level.
    """
    misses = result.misses
    instr = result.instructions
    n_cache = result.cache_lines
    k = (n_cache - 1) / n_cache
    out = np.empty(misses.size, dtype=float)
    frozen_at = None
    for i in range(misses.size):
        lo = max(0, i - window)
        d_instr = instr[i] - instr[lo]
        d_miss = misses[i] - misses[lo]
        mpi = 1000.0 * d_miss / max(1, d_instr)
        if frozen_at is None and i > window and mpi < mpi_threshold:
            frozen_at = n_cache * (1.0 - k ** float(misses[i]))
        if frozen_at is None:
            out[i] = n_cache * (1.0 - k ** float(misses[i]))
        else:
            out[i] = frozen_at
    return out


def format_fig7(results: Dict[str, MonitoredResult]) -> str:
    rows = []
    for name, res in results.items():
        adaptive = adaptive_prediction(res)
        base_err = res.mean_absolute_error
        adaptive_err = float(np.mean(np.abs(adaptive - res.observed)))
        rows.append(
            (
                name,
                int(res.misses[-1]),
                int(res.observed[-1]),
                float(res.predicted[-1]),
                res.final_ratio,
                base_err,
                adaptive_err,
            )
        )
    return format_table(
        [
            "app",
            "misses",
            "observed",
            "predicted",
            "pred/obs",
            "MAE(model)",
            "MAE(adaptive)",
        ],
        rows,
        title="Figure 7: overestimated footprints (+ MPI-switch heuristic)",
    )
