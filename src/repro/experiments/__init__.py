"""Experiment reproductions, one module per paper table/figure.

Each module exposes ``run_*`` functions returning plain data structures
and a ``format_*`` helper producing the rows/series the paper reports.
The ``benchmarks/`` tree wraps these in pytest-benchmark targets; the
modules themselves are importable for interactive exploration.
"""

from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5

__all__ = [
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table3",
    "run_table5",
]
