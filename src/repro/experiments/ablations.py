"""Ablations of the design choices the paper calls out.

- **Annotations** (section 5): "the LFF policy in the absence of
  annotations still eliminates 41% of all misses that are eliminated when
  the annotations are present.  Similarly, in the absence of annotations,
  LFF achieves 53% of possible speedup" (photo); merge's gains are almost
  entirely annotation-driven; tsp's barely change.
- **Associativity** (section 2.1): the model targets direct-mapped caches;
  running the same microbenchmark against an LRU set-associative E-cache
  quantifies how the accuracy degrades.
- **Page placement** (section 3.1): Kessler-Hill hierarchical mapping vs
  naive (arbitrary) placement.
- **Heap threshold** (section 5): bounding per-cpu heaps by evicting
  low-footprint threads vs keeping everything.
- **Photo creation order**: row-order creation (the paper's layout, where
  uniprocessor FCFS is already cache-optimal) vs tiled creation, where
  neighbour rows stay queued and the annotation-driven banding mechanism
  can cluster them on the SMP.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

import numpy as np

from repro.core.model import SharedStateModel
from repro.experiments.fig4 import _WalkBench
from repro.machine.configs import E5000_8CPU, ULTRA1, MachineConfig
from repro.machine.smp import Machine
from repro.machine.vm import KesslerHillPlacement, NaivePlacement
from repro.sched import FCFSScheduler, make_lff
from repro.sim.driver import run_monitored, run_performance
from repro.sim.report import format_table
from repro.workloads import (
    MergeParams,
    MergeWorkload,
    OceanLike,
    PhotoParams,
    PhotoWorkload,
    TasksParams,
    TasksWorkload,
    TspParams,
    TspWorkload,
)


def run_annotation_ablation(seed: int = 0):
    """LFF with and without annotations, per annotated workload.

    Each workload runs on the machine where its annotation effect is
    measurable: merge and tsp on the uniprocessor (their Figure 8 wins),
    photo with tiled creation on the SMP (the banding mechanism).
    """
    cases = {
        "merge": (
            ULTRA1,
            lambda annotate: MergeWorkload(MergeParams(), annotate=annotate),
        ),
        "photo": (
            E5000_8CPU,
            lambda annotate: PhotoWorkload(
                PhotoParams(), annotate=annotate, creation_order="tiled"
            ),
        ),
        # tsp's counter-driven share of the gain is an SMP effect: resuming
        # on the same cpu after allocator/incumbent blocks
        "tsp": (
            E5000_8CPU,
            lambda annotate: TspWorkload(TspParams(), annotate=annotate),
        ),
    }
    rows = {}
    for name, (config, factory) in cases.items():
        base = run_performance(factory(True), config, FCFSScheduler(), seed=seed)
        with_ann = run_performance(factory(True), config, make_lff(), seed=seed)
        without = run_performance(factory(False), config, make_lff(), seed=seed)
        elim_with = base.l2_misses - with_ann.l2_misses
        elim_without = base.l2_misses - without.l2_misses
        speed_with = with_ann.speedup_vs(base) - 1.0
        speed_without = without.speedup_vs(base) - 1.0
        rows[name] = {
            "elim_with": elim_with,
            "elim_without": elim_without,
            "elim_retained": elim_without / elim_with if elim_with else 0.0,
            "speedup_retained": (
                speed_without / speed_with if speed_with > 0 else 0.0
            ),
        }
    return rows


def format_annotation_ablation(rows) -> str:
    return format_table(
        ["workload", "misses elim (ann)", "misses elim (none)",
         "elim retained", "speedup retained"],
        [
            (name, r["elim_with"], r["elim_without"],
             r["elim_retained"], r["speedup_retained"])
            for name, r in rows.items()
        ],
        title="Ablation: LFF without annotations (paper: photo retains "
        "41% elim / 53% speedup)",
    )


def run_associativity_ablation(ways=(1, 2, 4), seed: int = 0):
    """Model accuracy (random walk, case 1) against E-cache associativity.

    Besides measuring how the paper's direct-mapped model degrades, this
    also evaluates the W-way extension (``repro.core.assoc``) the paper
    sketches in section 2.1 -- on the *decay* of a sleeping thread, where
    the extension's binomial-tail survival is exact in its derivation
    regime.
    """
    from repro.core.assoc import AssociativeStateModel

    results = {}
    for w in ways:
        config = replace(ULTRA1, name=f"ultra1-{w}way", l2_ways=w)
        bench = _WalkBench(config=config, seed=seed)
        tid = bench.declare(bench.walker.lines())
        misses, observed = bench.walk(20_000, [tid])[tid]
        predicted = bench.model.expected_running(0.0, misses)
        err = float(np.mean(np.abs(np.asarray(predicted) - observed)))

        # the sleeping-thread decay, direct-mapped model vs W-way extension
        sleeper_bench = _WalkBench(config=config, seed=seed + 1)
        n_cache = config.l2_lines
        s0 = n_cache // 4
        sleeper_region = sleeper_bench.machine.address_space.allocate_lines(
            "sleeper", s0
        )
        sleeper_tid = sleeper_bench.declare(sleeper_region.lines())
        sleeper_bench.pretouch(sleeper_region.lines())
        s_misses, s_observed = sleeper_bench.walk(20_000, [sleeper_tid])[
            sleeper_tid
        ]
        dm_pred = sleeper_bench.model.expected_independent(s0, s_misses)
        ext_pred = AssociativeStateModel(n_cache, w).expected_independent(
            s0, s_misses
        )
        dm_err = float(np.mean(np.abs(np.asarray(dm_pred) - s_observed)))
        ext_err = float(np.mean(np.abs(np.asarray(ext_pred) - s_observed)))

        results[w] = {
            "mae": err,
            "final_observed": int(observed[-1]),
            "final_predicted": float(predicted[-1]),
            "decay_mae_direct": dm_err,
            "decay_mae_extension": ext_err,
        }
    return results


def format_associativity_ablation(results) -> str:
    return format_table(
        [
            "ways",
            "MAE [lines]",
            "observed(end)",
            "predicted(end)",
            "decay MAE (k^n)",
            "decay MAE (W-way ext)",
        ],
        [
            (
                w,
                r["mae"],
                r["final_observed"],
                r["final_predicted"],
                r["decay_mae_direct"],
                r["decay_mae_extension"],
            )
            for w, r in results.items()
        ],
        title="Ablation: model accuracy vs E-cache associativity "
        "(paper model vs the section-2.1 W-way extension)",
    )


def run_vm_ablation(seed: int = 0):
    """Kessler-Hill vs naive page placement on a conflict-prone app."""
    results = {}
    for label, policy_cls in (
        ("kessler-hill", KesslerHillPlacement),
        ("naive", NaivePlacement),
    ):
        config = ULTRA1
        policy = policy_cls(
            config.l2_bytes // config.page_bytes,
            rng=np.random.default_rng(seed),
        )
        machine = Machine(config, placement=policy, seed=seed)
        # a stencil sweep is where page-bin balance matters most
        from repro.sched.fcfs import FCFSScheduler as _FCFS
        from repro.threads.runtime import Runtime

        runtime = Runtime(machine, _FCFS(model_scheduler_memory=False))
        # a sub-cache working set with revisits: placement decides
        # whether pages conflict at all
        app = OceanLike(grid=128, sweeps=4, arena_pages=8)
        app.setup(runtime)
        init = app.init_body()
        if init is not None:
            runtime.at_create(init, name="init")
            runtime.run()
        machine.flush_all()
        runtime.at_create(app.work_body(), name="work")
        runtime.run()
        results[label] = machine.total_l2_misses()
    return results


def format_vm_ablation(results) -> str:
    return format_table(
        ["placement", "E-misses"],
        list(results.items()),
        title="Ablation: Kessler-Hill vs naive page placement (ocean sweeps)",
    )


def run_threshold_ablation(thresholds=(0.0, 32.0, 256.0), seed: int = 0):
    """LFF heap threshold sweep on tasks (1 cpu)."""
    results = {}
    for threshold in thresholds:
        res = run_performance(
            TasksWorkload(TasksParams()),
            ULTRA1,
            make_lff(threshold_lines=threshold),
            seed=seed,
        )
        results[threshold] = {
            "misses": res.l2_misses,
            "cycles": res.cycles,
        }
    return results


def format_threshold_ablation(results) -> str:
    return format_table(
        ["threshold [lines]", "E-misses", "cycles"],
        [(t, r["misses"], r["cycles"]) for t, r in results.items()],
        title="Ablation: heap eviction threshold (tasks, 1 cpu)",
    )


def run_photo_order_ablation(seed: int = 0):
    """Row-order vs tiled creation for photo, on both machines."""
    results = {}
    for config in (ULTRA1, E5000_8CPU):
        for order in ("row", "tiled"):
            base = run_performance(
                PhotoWorkload(PhotoParams(), creation_order=order),
                config,
                FCFSScheduler(),
                seed=seed,
            )
            lff = run_performance(
                PhotoWorkload(PhotoParams(), creation_order=order),
                config,
                make_lff(),
                seed=seed,
            )
            results[(config.name, order)] = {
                "eliminated": 100.0 * lff.misses_eliminated_vs(base),
                "speedup": lff.speedup_vs(base),
            }
    return results


def format_photo_order_ablation(results) -> str:
    return format_table(
        ["machine", "creation order", "E-misses eliminated %", "rel perf"],
        [
            (machine, order, r["eliminated"], r["speedup"])
            for (machine, order), r in results.items()
        ],
        title="Ablation: photo thread creation order (banding mechanism)",
    )
