"""Figure 5: observed vs predicted footprints for six applications.

The paper traces the reload transient of a single "work" thread per app
on a uniprocessor after a cache flush (section 3.3) and overlays the
model's prediction.  The qualitative findings to reproduce:

- C (SPLASH-2-like) apps: "the predicted footprints are somewhat larger
  than those observed ... due to higher clustering of references than
  that expected by the model";
- Sather apps: "generally good correspondence between the predicted and
  observed footprints".
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.driver import run_monitored
from repro.sim.metrics import MonitoredResult
from repro.sim.report import format_table
from repro.workloads import MONITORED_APPS


def run_fig5(
    apps: List[str] = None, seed: int = 0, backend: str = "sim"
) -> Dict[str, MonitoredResult]:
    """Trace every (requested) Figure 5 application.

    ``backend="analytic"`` swaps the simulated cache for the closed-form
    reuse-distance backend (fast, approximate; see docs/MODEL.md).
    """
    names = apps or list(MONITORED_APPS)
    results = {}
    for name in names:
        app = MONITORED_APPS[name]()
        results[name] = run_monitored(app, seed=seed, backend=backend)
    return results


def format_fig5(results: Dict[str, MonitoredResult]) -> str:
    """The per-app accuracy summary rows."""
    rows = []
    for name, res in results.items():
        rows.append(
            (
                name,
                res.language,
                int(res.misses[-1]) if res.misses.size else 0,
                int(res.observed[-1]) if res.observed.size else 0,
                float(res.predicted[-1]) if res.predicted.size else 0.0,
                res.final_ratio,
                res.mean_absolute_error,
            )
        )
    return format_table(
        [
            "app",
            "lang",
            "misses",
            "observed[lines]",
            "predicted[lines]",
            "pred/obs",
            "MAE[lines]",
        ],
        rows,
        title="Figure 5: observed vs predicted work-thread footprints",
    )
