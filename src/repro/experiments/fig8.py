"""Figure 8: performance impact of locality scheduling on one processor.

FCFS is the base case (relative performance 1.0).  Expected shape
(paper's Figure 8 + Table 5, 1-cpu column):

- ``tasks``: both policies eliminate ~90% of E-cache misses and run >2x
  faster (disjoint footprints, counter-driven affinity only);
- ``merge``: large gains, annotation-driven (~57% misses, ~1.6x);
- ``photo``: FCFS order is already cache-optimal; locality policies pay
  for their data structures (about -1% misses, ~0.97x);
- ``tsp``: compulsory initialisation misses dominate; only ~12% of misses
  go away, ~1.0x.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.machine.configs import ULTRA1, MachineConfig
from repro.sched import SCHEDULERS
from repro.sim.driver import run_performance
from repro.sim.metrics import PerfResult
from repro.sim.report import format_table
from repro.workloads import (
    MergeParams,
    MergeWorkload,
    PhotoParams,
    PhotoWorkload,
    TasksParams,
    TasksWorkload,
    TspParams,
    TspWorkload,
)

#: workload factories at the default (scaled) Table 4 parameters
def default_workloads() -> Dict[str, Callable]:
    return {
        "tasks": lambda: TasksWorkload(TasksParams()),
        "merge": lambda: MergeWorkload(MergeParams()),
        "photo": lambda: PhotoWorkload(PhotoParams()),
        "tsp": lambda: TspWorkload(TspParams()),
    }


def run_policies(
    config: MachineConfig,
    workloads: Optional[Dict[str, Callable]] = None,
    policies: List[str] = ("fcfs", "lff", "crt"),
    seed: int = 0,
    backend: str = "sim",
) -> Dict[str, Dict[str, PerfResult]]:
    """results[workload][policy] for the given machine.

    ``backend="analytic"`` prices misses with the closed-form
    reuse-distance backend instead of simulating the caches -- orders of
    magnitude faster for parameter sweeps, approximate within the bounds
    the ``analytic-oracle`` CI job pins (docs/MODEL.md).
    """
    workloads = workloads or default_workloads()
    results: Dict[str, Dict[str, PerfResult]] = {}
    for wl_name, factory in workloads.items():
        results[wl_name] = {}
        for policy in policies:
            scheduler = SCHEDULERS[policy]()
            results[wl_name][policy] = run_performance(
                factory(), config, scheduler, seed=seed, backend=backend
            )
    return results


def run_fig8(seed: int = 0, backend: str = "sim") -> Dict[str, Dict[str, PerfResult]]:
    """The uniprocessor (Ultra-1) sweep."""
    return run_policies(ULTRA1, seed=seed, backend=backend)


def format_results(
    results: Dict[str, Dict[str, PerfResult]], title: str
) -> str:
    """Rows matching the paper's bar charts: total E-misses (relative to
    FCFS) and relative performance for each policy."""
    rows = []
    for wl_name, by_policy in results.items():
        base = by_policy["fcfs"]
        for policy, res in by_policy.items():
            rows.append(
                (
                    wl_name,
                    policy,
                    res.l2_misses,
                    100.0 * res.misses_eliminated_vs(base),
                    res.speedup_vs(base),
                    res.context_switches,
                )
            )
    return format_table(
        [
            "workload",
            "policy",
            "E-misses",
            "eliminated%",
            "rel.perf",
            "switches",
        ],
        rows,
        title=title,
    )


def format_fig8(results) -> str:
    return format_results(
        results, "Figure 8: locality scheduling on a 1-cpu Ultra-1"
    )
