"""The fairness trade-off (paper section 7).

"Rearranging the execution order may have an adverse effect on fairness.
In particular, locality techniques generally favor the execution of a few
threads with much state already in the cache possibly starving the
others ...  if fairness is important, a practical scheduler must provide
an escape mechanism to bypass the default priority evaluation."

This experiment quantifies both halves of that statement on the `tasks`
benchmark: LFF starves cold threads (large maximum wait), and the
``fairness_boost`` escape (dispatching from the global FIFO every k-th
pick) trades a controlled amount of locality for bounded waits.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.machine.configs import ULTRA1, MachineConfig
from repro.machine.smp import Machine
from repro.sched import FCFSScheduler, make_lff
from repro.sim.report import format_table
from repro.threads.runtime import Runtime
from repro.workloads import TasksParams, TasksWorkload


def run_fairness_sweep(
    boosts=(0, 16, 4),
    config: MachineConfig = ULTRA1,
    params: Optional[TasksParams] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """FCFS plus LFF at several fairness-boost settings."""
    params = params or TasksParams()

    def run(scheduler):
        machine = Machine(config, seed=seed)
        runtime = Runtime(machine, scheduler)
        workload = TasksWorkload(params)
        workload.build(runtime)
        runtime.run()
        waits = np.asarray(
            [runtime.thread(t).stats.max_wait_cycles for t in workload.tids]
        )
        return {
            "misses": machine.total_l2_misses(),
            "cycles": machine.time(),
            "max_wait": int(waits.max()),
            "mean_wait": float(waits.mean()),
        }

    results = {"fcfs": run(FCFSScheduler())}
    for boost in boosts:
        label = "lff" if boost == 0 else f"lff boost={boost}"
        results[label] = run(make_lff(fairness_boost=boost))
    return results


def format_fairness_sweep(results: Dict[str, Dict[str, float]]) -> str:
    base = results["fcfs"]
    rows = []
    for name, stats in results.items():
        rows.append(
            (
                name,
                stats["misses"],
                100.0 * (1 - stats["misses"] / base["misses"]),
                base["cycles"] / stats["cycles"],
                stats["max_wait"],
                stats["mean_wait"],
            )
        )
    return format_table(
        [
            "policy",
            "E-misses",
            "eliminated %",
            "rel perf",
            "max wait [cyc]",
            "mean wait [cyc]",
        ],
        rows,
        title="Section 7: locality vs fairness (tasks, max/mean time a "
        "ready thread waited)",
    )
