"""Runtime invariant checking: the referee of the fault campaign.

An :class:`InvariantChecker` is a runtime :class:`~repro.threads.runtime.
Observer` that validates, at every step, the invariants that *must* hold
no matter how corrupted the hint inputs are:

- thread-state transitions: a dispatched thread is RUNNING on exactly one
  cpu; an ended interval leaves the cpu slot empty; a finished interval
  ends a RUNNING thread;
- thread-table consistency: the runtime's live count matches the table,
  every BLOCKED thread records what it waits on;
- mutex ownership: an owner is alive and never queued behind its own
  lock; queued waiters are BLOCKED;
- LFF/CRT heap-priority invariants, via
  :meth:`repro.sched.heap.PriorityHeap.validate`.

Any breach raises :class:`~repro.threads.errors.InvariantViolation` --
which a correct runtime never does, faults or no faults.  The light
per-event checks are O(cpus); the full table/heap sweep runs every
``deep_every`` events (1 = every step).
"""

from __future__ import annotations

from repro.threads.errors import InvariantViolation
from repro.threads.runtime import Observer
from repro.threads.thread import ActiveThread, ThreadState


class InvariantChecker(Observer):
    """Validates runtime/scheduler invariants as a measurement observer."""

    def __init__(self, runtime, deep_every: int = 32) -> None:
        self.runtime = runtime
        #: period (in events) of the full table/mutex/heap sweep
        self.deep_every = max(1, deep_every)
        self._mutexes: dict = {}  # id -> mutex, discovered from events
        self._events_seen = 0
        self.checks = 0
        self.deep_checks = 0

    # -- observer hooks ------------------------------------------------------

    def on_dispatch(self, cpu: int, thread: ActiveThread) -> None:
        self.checks += 1
        if thread.state is not ThreadState.RUNNING:
            raise InvariantViolation(
                f"dispatched {thread} is {thread.state.value}, not running"
            )
        current = self.runtime._current
        if current[cpu] is not thread:
            raise InvariantViolation(
                f"{thread} dispatched on cpu {cpu} but not current there"
            )
        for other, occupant in enumerate(current):
            if other != cpu and occupant is thread:
                raise InvariantViolation(
                    f"{thread} current on cpus {cpu} and {other} at once"
                )
        if self.runtime.threads.get(thread.tid) is not thread:
            raise InvariantViolation(
                f"dispatched {thread} missing from the thread table"
            )

    def on_block(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        self.checks += 1
        if self.runtime._current[cpu] is not None:
            raise InvariantViolation(
                f"cpu {cpu} still occupied after {thread}'s interval ended"
            )
        if finished and thread.state is not ThreadState.RUNNING:
            raise InvariantViolation(
                f"finished {thread} was {thread.state.value}, not running"
            )
        if not finished and thread.state not in (
            ThreadState.BLOCKED,
            ThreadState.READY,
            ThreadState.SLEEPING,
        ):
            raise InvariantViolation(
                f"{thread} ended an interval in state {thread.state.value}"
            )

    def on_event(self, cpu: int, thread: ActiveThread, event) -> None:
        mutex = getattr(event, "mutex", None)
        if mutex is not None:
            self._mutexes[id(mutex)] = mutex
        self._events_seen += 1
        if self._events_seen % self.deep_every == 0:
            self.deep_check()

    # -- the full sweep ------------------------------------------------------

    def deep_check(self) -> None:
        """Validate the whole thread table, known mutexes, and scheduler
        heaps at a consistent point."""
        self.deep_checks += 1
        runtime = self.runtime
        alive = sum(1 for t in runtime.threads.values() if t.alive)
        if alive != runtime._live:
            raise InvariantViolation(
                f"live-count drift: table has {alive}, runtime says "
                f"{runtime._live}"
            )
        seen_running: dict = {}
        for cpu, occupant in enumerate(runtime._current):
            if occupant is None:
                continue
            if occupant.state is not ThreadState.RUNNING:
                raise InvariantViolation(
                    f"cpu {cpu} runs {occupant} in state "
                    f"{occupant.state.value}"
                )
            if id(occupant) in seen_running:
                raise InvariantViolation(
                    f"{occupant} current on two cpus at once"
                )
            seen_running[id(occupant)] = cpu
        for t in runtime.threads.values():
            if t.state is ThreadState.RUNNING and id(t) not in seen_running:
                raise InvariantViolation(f"running {t} is on no cpu")
            if t.state is ThreadState.BLOCKED and t.waiting_on is None:
                raise InvariantViolation(
                    f"blocked {t} waits on nothing recorded"
                )
        for mutex in self._mutexes.values():
            self._check_mutex(mutex)
        for heap in getattr(runtime.scheduler, "heaps", []):
            heap.validate()

    def _check_mutex(self, mutex) -> None:
        owner = mutex.owner
        if owner is not None and not owner.alive:
            raise InvariantViolation(
                f"{mutex.name} owned by finished {owner}"
            )
        for waiter in mutex._waiters:
            if waiter is owner:
                raise InvariantViolation(
                    f"{owner} waits on {mutex.name} it already owns"
                )
            if waiter.state is not ThreadState.BLOCKED:
                raise InvariantViolation(
                    f"{waiter} queued on {mutex.name} while "
                    f"{waiter.state.value}"
                )
