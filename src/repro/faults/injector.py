"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector instance is wired into one :class:`~repro.threads.runtime.
Runtime` (pass it as ``Runtime(machine, scheduler, injector=...)``).  The
runtime calls three duck-typed hooks:

- :meth:`transform_share` intercepts every ``at_share`` annotation and may
  drop it, corrupt its coefficient, or fabricate extra edges;
- :meth:`wrap_view` wraps each cpu's :class:`~repro.machine.counters.
  MissCounterView` so interval miss readings can be perturbed (noise,
  saturation, wraparound artefacts, stuck-at-zero) *after* the true
  hardware read -- the machine's caches and clocks are never touched;
- :meth:`before_step` fires thread faults: cpu-clock delays, an
  :class:`InjectedCrash`, or a livelock spin.

All decisions come from one ``numpy`` RNG seeded from the plan, and the
surrounding simulation is deterministic, so every faulty run replays
bit-identically for a given seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.faults.plan import FaultPlan
from repro.threads.errors import ThreadError


class InjectedCrash(ThreadError):
    """A fault-injected thread crash (the analogue of a thread dying
    mid-interval).  The watchdog responds with retry-with-reseed."""


class FaultyCounterView:
    """A :class:`MissCounterView` look-alike that perturbs readings.

    The perturbation is applied to the *returned* miss count only: the
    underlying view still performs its real (and correctly charged) PIC
    reads, so injecting counter faults changes what the scheduler is told,
    never what the program did.
    """

    def __init__(self, inner, injector: "FaultInjector", cpu: int) -> None:
        self._inner = inner
        self._injector = injector
        self._cpu = cpu

    def interval_misses(self) -> int:
        return self._injector.perturb_misses(
            self._cpu, self._inner.interval_misses()
        )

    @property
    def last_overflow_suspect(self) -> bool:
        """Overflow suspicion is a property of the real reads, never of
        the injected perturbation; forward it unmodified."""
        return self._inner.last_overflow_suspect

    @property
    def overflow_suspects(self) -> int:
        return self._inner.overflow_suspects

    @property
    def last_overflow_detail(self) -> str:
        return self._inner.last_overflow_detail

    @property
    def read_cost_instructions(self) -> int:
        return self._inner.read_cost_instructions


class FaultInjector:
    """Stateful executor of a fault plan, attached to one runtime."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.runtime = None
        # injection tallies, for diagnostics and campaign reporting
        self.dropped_edges = 0
        self.corrupted_edges = 0
        self.bogus_edges = 0
        self.counter_faults = 0
        self.delays = 0
        self.crashes = 0
        self.livelocks = 0

    def attach(self, runtime) -> None:
        self.runtime = runtime

    # -- annotation faults ---------------------------------------------------

    def transform_share(
        self, src: int, dst: int, q: float
    ) -> List[Tuple[int, int, float]]:
        """Rewrite one ``at_share(src, dst, q)`` into the edges actually
        applied (possibly none, possibly with extras)."""
        faults = self.plan.annotation
        if faults is None:
            return [(src, dst, q)]
        edges: List[Tuple[int, int, float]] = []
        roll = self.rng.random()
        if roll < faults.drop_prob:
            self.dropped_edges += 1
        elif roll < faults.drop_prob + faults.corrupt_prob:
            self.corrupted_edges += 1
            edges.append((src, dst, float(self.rng.random())))
        else:
            edges.append((src, dst, q))
        if self.rng.random() < faults.bogus_prob:
            bogus = self._bogus_edge(src, dst)
            if bogus is not None:
                self.bogus_edges += 1
                edges.append(bogus)
        return edges

    def _bogus_edge(
        self, src: int, dst: int
    ) -> Optional[Tuple[int, int, float]]:
        threads = self.runtime.threads if self.runtime is not None else {}
        candidates = sorted(
            tid for tid, t in threads.items() if t.alive and tid != src
        )
        if not candidates:
            return None
        target = candidates[int(self.rng.integers(len(candidates)))]
        return (src, target, float(self.rng.random()))

    # -- counter faults ------------------------------------------------------

    def wrap_view(self, cpu: int, view) -> Union[FaultyCounterView, object]:
        if self.plan.counter is None:
            return view
        return FaultyCounterView(view, self, cpu)

    def perturb_misses(self, cpu: int, misses: int) -> int:
        faults = self.plan.counter
        if faults is None or self.rng.random() >= faults.prob:
            return misses
        self.counter_faults += 1
        wrap = 1 << faults.width_bits
        if faults.mode == "zero":
            return 0
        if faults.mode == "saturate":
            return wrap - 1
        if faults.mode == "wrap":
            # the reading a naive delta would produce had the register
            # wrapped mid-interval: a huge bogus value when misses < offset
            return (misses - faults.magnitude) % wrap
        # noise: may go negative -- the scheduler must clamp, not crash
        return misses + int(
            self.rng.integers(-faults.magnitude, faults.magnitude + 1)
        )

    # -- thread faults -------------------------------------------------------

    def before_step(self, cpu: int, thread) -> Optional[Union[str, tuple]]:
        """Decide a thread fault for this step.

        Returns ``None`` (no fault), ``("delay", instructions)``, or
        ``"livelock"``; raises :class:`InjectedCrash` for crashes.
        """
        faults = self.plan.thread
        if faults is None:
            return None
        if self.rng.random() >= faults.prob:
            return None
        if faults.mode == "delay":
            self.delays += 1
            return ("delay", faults.delay_instructions)
        if faults.mode == "crash":
            if self.crashes >= faults.max_injections:
                return None
            self.crashes += 1
            raise InjectedCrash(
                f"injected crash in {thread} at event "
                f"{self.runtime.events_executed if self.runtime else '?'}"
            )
        if self.livelocks >= faults.max_injections:
            return None
        self.livelocks += 1
        return "livelock"

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Injection tallies for diagnostics."""
        return {
            "plan": self.plan.active_classes,
            "seed": self.plan.seed,
            "dropped_edges": self.dropped_edges,
            "corrupted_edges": self.corrupted_edges,
            "bogus_edges": self.bogus_edges,
            "counter_faults": self.counter_faults,
            "delays": self.delays,
            "crashes": self.crashes,
            "livelocks": self.livelocks,
        }
