"""Deterministic fault injection and the robustness campaign.

The paper's central robustness claim (section 2.3) is that sharing
annotations and counter readings are *hints*: wrong values may cost
performance but can never change program results.  This package makes
that claim falsifiable:

- :mod:`repro.faults.plan` -- seeded, frozen :class:`FaultPlan`
  descriptions of which chaos to inject (annotation corruption, counter
  perturbation, thread delays/crashes/livelocks) and the canonical
  :data:`FAULT_CLASSES` the campaign sweeps;
- :mod:`repro.faults.injector` -- the :class:`FaultInjector` wired into a
  :class:`~repro.threads.runtime.Runtime`, executing a plan from one
  seeded RNG so faulty runs replay bit-identically;
- :mod:`repro.faults.invariants` -- the :class:`InvariantChecker`
  observer that referees every run (thread-state transitions, mutex
  ownership, heap-priority invariants);
- :mod:`repro.faults.campaign` -- :func:`run_campaign`, asserting
  bit-identical results under hint faults and typed diagnostics under
  induced hangs.

Hardening counterparts live next to the code they harden: the watchdog
and :func:`~repro.sim.driver.run_hardened` in :mod:`repro.sim.driver`,
counter-anomaly degradation in :mod:`repro.sched.locality`, wait-for
cycle reporting in :mod:`repro.threads.errors`.
"""

from repro.faults.campaign import (
    CampaignRow,
    campaign_shards,
    campaign_workloads,
    format_campaign,
    run_campaign,
)
from repro.faults.injector import FaultInjector, FaultyCounterView, InjectedCrash
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    EXPECTS_TIMEOUT,
    FAULT_CLASSES,
    AnnotationFaults,
    CounterFaults,
    FaultPlan,
    ThreadFaults,
)

__all__ = [
    "AnnotationFaults",
    "CampaignRow",
    "CounterFaults",
    "EXPECTS_TIMEOUT",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "FaultyCounterView",
    "InjectedCrash",
    "InvariantChecker",
    "ThreadFaults",
    "campaign_shards",
    "campaign_workloads",
    "format_campaign",
    "run_campaign",
]
