"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a pure description of which chaos to inject into a
run: which hint paths to corrupt (sharing annotations, counter readings)
and how to perturb threads (delays, crashes, livelocks).  Plans are frozen
dataclasses; all randomness lives in the :class:`~repro.faults.injector.
FaultInjector` built from a plan, whose RNG is seeded from ``plan.seed``.
Because the simulation itself is deterministic, a given (workload, config,
policy, plan) tuple replays bit-identically -- the property every
campaign assertion rests on.

The paper's robustness contract (section 2.3) splits the fault space in
two:

- **hint faults** (annotation and counter classes) may cost performance
  but must never change program results;
- **thread faults** exercise the runtime's hardening instead: delays must
  be absorbed, crashes must be retried, livelocks must be converted into
  a diagnostic :class:`~repro.threads.errors.WatchdogTimeout`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

#: mixing constant for reseeding (the 64-bit golden ratio, as used by
#: splitmix64) so derived seeds decorrelate from the parent seed
_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class AnnotationFaults:
    """Corrupt the ``at_share`` hint path."""

    #: probability an annotation is silently dropped
    drop_prob: float = 0.0
    #: probability an annotation's q is replaced with a random value
    corrupt_prob: float = 0.0
    #: probability an extra bogus edge to a random live thread is added
    bogus_prob: float = 0.0


@dataclass(frozen=True)
class CounterFaults:
    """Perturb per-interval PIC miss readings."""

    #: "noise" | "saturate" | "wrap" | "zero"
    mode: str = "noise"
    #: per-read probability the fault fires
    prob: float = 1.0
    #: noise amplitude / wrap offset, in miss counts
    magnitude: int = 64
    #: simulated register width for saturation/wrap artefacts
    width_bits: int = 32

    _MODES = ("noise", "saturate", "wrap", "zero")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"unknown counter fault mode {self.mode!r}")


@dataclass(frozen=True)
class ThreadFaults:
    """Crash, hang, or delay threads mid-interval."""

    #: "delay" | "crash" | "livelock"
    mode: str = "delay"
    #: per-step probability the fault fires
    prob: float = 0.001
    #: cpu-clock stall per delay injection, in instructions
    delay_instructions: int = 50_000
    #: crash/livelock injections are capped at this many per run
    max_injections: int = 1

    _MODES = ("delay", "crash", "livelock")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"unknown thread fault mode {self.mode!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded combination of fault classes; any subset may be active."""

    seed: int = 0
    annotation: Optional[AnnotationFaults] = None
    counter: Optional[CounterFaults] = None
    thread: Optional[ThreadFaults] = None

    def reseed(self, attempt: int) -> "FaultPlan":
        """The same plan with a decorrelated seed, for retry-with-reseed:
        a transient fault is unlikely to recur at the same point."""
        mixed = (self.seed * _GOLDEN + attempt * 0x85EBCA6B) & _MASK
        return replace(self, seed=mixed)

    def without_thread_faults(self) -> "FaultPlan":
        """The plan with thread perturbation disabled -- the watchdog's
        last-resort "safe mode" when crashes persist across reseeds."""
        return replace(self, thread=None)

    @property
    def active_classes(self) -> str:
        parts = []
        if self.annotation is not None:
            parts.append("annotation")
        if self.counter is not None:
            parts.append(f"counter:{self.counter.mode}")
        if self.thread is not None:
            parts.append(f"thread:{self.thread.mode}")
        return "+".join(parts) or "none"


#: canonical fault classes the campaign and CLI iterate over
FAULT_CLASSES: Dict[str, Callable[[int], FaultPlan]] = {
    "annotation_chaos": lambda seed: FaultPlan(
        seed=seed,
        annotation=AnnotationFaults(
            drop_prob=0.3, corrupt_prob=0.4, bogus_prob=0.3
        ),
    ),
    "counter_noise": lambda seed: FaultPlan(
        seed=seed, counter=CounterFaults(mode="noise", magnitude=64)
    ),
    "counter_saturate": lambda seed: FaultPlan(
        seed=seed, counter=CounterFaults(mode="saturate", prob=0.25)
    ),
    "counter_wrap": lambda seed: FaultPlan(
        seed=seed,
        counter=CounterFaults(mode="wrap", prob=0.25, magnitude=1000),
    ),
    "counter_zero": lambda seed: FaultPlan(
        seed=seed, counter=CounterFaults(mode="zero")
    ),
    "thread_delay": lambda seed: FaultPlan(
        seed=seed, thread=ThreadFaults(mode="delay", prob=0.01)
    ),
    # crash/livelock use a high per-step probability so the (single,
    # capped) injection fires even in smoke-scale runs of a few hundred
    # steps; max_injections keeps long runs to one fault occurrence
    "thread_crash": lambda seed: FaultPlan(
        seed=seed, thread=ThreadFaults(mode="crash", prob=0.05)
    ),
    "thread_livelock": lambda seed: FaultPlan(
        seed=seed, thread=ThreadFaults(mode="livelock", prob=0.05)
    ),
}

#: fault classes whose *expected* campaign outcome is a WatchdogTimeout
#: diagnostic rather than a completed run
EXPECTS_TIMEOUT = frozenset({"thread_livelock"})
