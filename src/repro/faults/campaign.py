"""The fault campaign: chaos-test the paper's robustness contract.

Section 2.3 of the paper argues that sharing annotations and performance
counter readings are *hints*: "incorrect information may affect
performance, but it does not affect the correctness of the program."
``run_campaign`` turns that sentence into an executable assertion: for
each (workload, policy) pair it runs a fault-free baseline, then replays
the run under every fault class in :data:`~repro.faults.plan.
FAULT_CLASSES`, and compares per-thread result signatures
(:func:`~repro.sim.driver.workload_signature`).

Expected outcomes, per fault class:

- hint faults (``annotation_*``, ``counter_*``) and absorbed thread
  delays: the run completes with a **bit-identical** signature, within a
  bounded slowdown;
- ``thread_crash``: the watchdog retries with a reseeded plan and the
  surviving attempt's signature is bit-identical;
- ``thread_livelock``: the run does *not* complete -- the watchdog must
  convert the hang into a :class:`~repro.threads.errors.WatchdogTimeout`
  diagnostic, which the campaign records as the expected outcome.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.faults.plan import EXPECTS_TIMEOUT, FAULT_CLASSES, FaultPlan
from repro.machine.configs import SMALL, MachineConfig
from repro.parallel import (
    ClusterConfig,
    ProgressFn,
    ResultCache,
    Shard,
    run_shards,
)
from repro.sched import SCHEDULERS
from repro.sim.driver import (
    HardenedResult,
    Watchdog,
    run_hardened,
    workload_signature,
)
from repro.sim.report import format_table
from repro.threads.errors import WatchdogTimeout
from repro.workloads.mergesort import MergeWorkload
from repro.workloads.params import MergeParams, PhotoParams, TasksParams, TspParams
from repro.workloads.photo import PhotoWorkload
from repro.workloads.randomwalk import RandomWalkWorkload
from repro.workloads.tasks import TasksWorkload
from repro.workloads.tsp import TspWorkload


def campaign_workloads(scale: str = "smoke") -> Dict[str, Callable]:
    """Workload factories for the campaign.

    ``smoke`` shrinks every application so a full fault sweep stays in
    seconds; ``default`` uses the experiments' default parameters.
    """
    if scale == "smoke":
        return {
            "randomwalk": lambda: RandomWalkWorkload(
                total_touches=4096, periods=3
            ),
            "tasks": lambda: TasksWorkload(
                TasksParams(num_tasks=24, periods=4)
            ),
            "merge": lambda: MergeWorkload(
                MergeParams(num_elements=4000, leaf_cutoff=250)
            ),
            "photo": lambda: PhotoWorkload(
                PhotoParams(width=128, height=32)
            ),
            "tsp": lambda: TspWorkload(
                TspParams(num_cities=12, branch_levels=4)
            ),
        }
    if scale == "default":
        return {
            "randomwalk": lambda: RandomWalkWorkload(),
            "tasks": lambda: TasksWorkload(),
            "merge": lambda: MergeWorkload(),
            "photo": lambda: PhotoWorkload(),
            "tsp": lambda: TspWorkload(),
        }
    raise ValueError(f"unknown campaign scale {scale!r}")


@dataclass
class CampaignRow:
    """Outcome of one (workload, policy, fault class) cell."""

    workload: str
    policy: str
    fault_class: str
    outcome: str  # "identical" | "watchdog-timeout" | "DIVERGED" | "ERROR"
    ok: bool  # outcome matches the fault class's contract
    slowdown: Optional[float] = None  # cycles vs fault-free baseline
    attempts: int = 1
    detail: str = ""
    result: Optional[HardenedResult] = field(default=None, repr=False)


def _diff_signatures(base, faulty) -> str:
    """First few per-thread differences, for the diagnostic column."""
    base_only = Counter(base) - Counter(faulty)
    faulty_only = Counter(faulty) - Counter(base)
    diffs = [f"baseline-only {e}" for e in sorted(base_only)[:3]]
    diffs += [f"faulty-only {e}" for e in sorted(faulty_only)[:3]]
    return "; ".join(diffs)


#: watchdog defaults for campaign cells (the per-shard timeout: step
#: budgets are simulated-event counts, so they fire identically no
#: matter which worker runs the shard)
DEFAULT_STEP_BUDGET = 50_000
DEFAULT_MAX_CHUNKS = 40


def _run_pair(
    wname: str,
    factory: Callable,
    policy: str,
    fault_classes: Iterable[str],
    config: MachineConfig,
    seed: int,
    watchdog_factory: Callable[[], Watchdog],
    engine: str = "stepped",
) -> List[CampaignRow]:
    """One (workload, policy) block: fault-free baseline, then every
    requested fault class against it.  This is the shard body -- the
    serial loop and the worker processes both call it, so the two paths
    cannot diverge."""
    scheduler_factory = SCHEDULERS[policy]
    baseline = run_hardened(
        factory,
        config,
        scheduler_factory,
        plan=None,
        seed=seed,
        watchdog=watchdog_factory(),
        engine=engine,
    )
    return [
        _run_cell(
            wname,
            policy,
            cname,
            FAULT_CLASSES[cname](seed),
            factory,
            scheduler_factory,
            config,
            seed,
            baseline,
            watchdog_factory(),
            engine,
        )
        for cname in fault_classes
    ]


def _campaign_shard(
    workload: str,
    policy: str,
    scale: str,
    fault_classes: List[str],
    config: MachineConfig,
    seed: int,
    step_budget: int,
    max_chunks: int,
    engine: str = "stepped",
) -> List[CampaignRow]:
    """Worker entry point: everything arrives by name or plain value."""
    factory = campaign_workloads(scale)[workload]
    return _run_pair(
        workload,
        factory,
        policy,
        fault_classes,
        config,
        seed,
        lambda: Watchdog(step_budget=step_budget, max_chunks=max_chunks),
        engine=engine,
    )


def campaign_shards(
    scale: str = "smoke",
    workload_names: Optional[Sequence[str]] = None,
    policies: Iterable[str] = ("fcfs", "lff"),
    fault_classes: Optional[Iterable[str]] = None,
    config: MachineConfig = SMALL,
    seed: int = 0,
    step_budget: int = DEFAULT_STEP_BUDGET,
    max_chunks: int = DEFAULT_MAX_CHUNKS,
    engine: str = "stepped",
) -> List[Shard]:
    """Deterministic work partitioning of the campaign matrix.

    One shard per (workload, policy) pair, in the serial iteration
    order, so the merged rows are bit-identical to the serial loop.
    Sharding at the pair keeps the fault-free baseline computed once
    per pair (as the serial loop does) instead of once per cell.
    """
    names = (
        list(workload_names)
        if workload_names is not None
        else list(campaign_workloads(scale))
    )
    classes = (
        list(fault_classes) if fault_classes is not None
        else list(FAULT_CLASSES)
    )
    shards = []
    for wname in names:
        for policy in policies:
            shards.append(
                Shard(
                    index=len(shards),
                    key=f"faults/{wname}/{policy}",
                    fn="repro.faults.campaign:_campaign_shard",
                    params={
                        "workload": wname,
                        "policy": policy,
                        "scale": scale,
                        "fault_classes": classes,
                        "config": config,
                        "seed": seed,
                        "step_budget": step_budget,
                        "max_chunks": max_chunks,
                        "engine": engine,
                    },
                )
            )
    return shards


def run_campaign(
    workloads: Optional[Dict[str, Callable]] = None,
    policies: Iterable[str] = ("fcfs", "lff"),
    fault_classes: Optional[Iterable[str]] = None,
    config: MachineConfig = SMALL,
    seed: int = 0,
    watchdog_factory: Optional[Callable[[], Watchdog]] = None,
    *,
    scale: str = "smoke",
    workload_names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    partial: bool = False,
    progress: Optional[ProgressFn] = None,
    backend: str = "local",
    cache: Optional[ResultCache] = None,
    cluster: Optional[ClusterConfig] = None,
    engine: str = "stepped",
) -> List[CampaignRow]:
    """Run the full fault matrix; returns one row per cell.

    Every row's ``ok`` means "the contract held": hint faults left
    results bit-identical, crashes were survived by retry, livelocks
    became watchdog diagnostics.  A ``DIVERGED`` or ``ERROR`` row is a
    genuine robustness bug.

    With ``jobs > 1`` the (workload, policy) pairs run on a process
    pool via :mod:`repro.parallel`; the merged rows are bit-identical
    to ``jobs=1`` (asserted by ``tests/parallel``).  The parallel path
    requires the work to be specified *by name* (``scale`` plus
    ``workload_names``) so shards stay pure and picklable -- passing
    live ``workloads`` factories or a ``watchdog_factory`` closure
    forces the serial path.  With ``partial=True`` a shard that failed
    (after its retry) is reported as one synthetic ``SHARD-FAILED`` row
    instead of aborting the whole campaign.

    ``backend="cluster"`` ships the pairs to dispatch worker nodes
    (docs/PARALLEL.md): nodes may die mid-campaign and the merged rows
    are still bit-identical (the ``dispatch-chaos`` CI job kills one
    on purpose).  ``cache`` makes the campaign resumable: pairs whose
    fingerprint already has a stored result are not re-executed.
    """
    if fault_classes is None:
        fault_classes = list(FAULT_CLASSES)
    fault_classes = list(fault_classes)

    if workloads is not None or watchdog_factory is not None:
        if jobs > 1 or backend != "local" or cache is not None:
            raise ValueError(
                "parallel/cluster/cached campaigns shard by name: pass "
                "scale/workload_names instead of live workloads/watchdog "
                "factories"
            )
        if workloads is None:
            workloads = campaign_workloads(scale)
        if watchdog_factory is None:
            watchdog_factory = lambda: Watchdog(
                step_budget=DEFAULT_STEP_BUDGET, max_chunks=DEFAULT_MAX_CHUNKS
            )
        rows: List[CampaignRow] = []
        for wname, factory in workloads.items():
            for policy in policies:
                rows.extend(
                    _run_pair(
                        wname,
                        factory,
                        policy,
                        fault_classes,
                        config,
                        seed,
                        watchdog_factory,
                        engine=engine,
                    )
                )
        return rows

    shards = campaign_shards(
        scale=scale,
        workload_names=workload_names,
        policies=policies,
        fault_classes=fault_classes,
        config=config,
        seed=seed,
        engine=engine,
    )
    outcomes = run_shards(
        shards, jobs=jobs, partial=partial, progress=progress,
        backend=backend, cache=cache, cluster=cluster,
    )
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            rows.extend(outcome.value)
        else:
            # partial mode: one synthetic row stands in for the lost pair
            _prefix, wname, policy = outcome.shard.key.split("/")
            rows.append(
                CampaignRow(
                    workload=wname,
                    policy=policy,
                    fault_class="*",
                    outcome="SHARD-FAILED",
                    ok=False,
                    attempts=outcome.attempts,
                    detail=outcome.error,
                )
            )
    return rows


def _run_cell(
    wname: str,
    policy: str,
    cname: str,
    plan: FaultPlan,
    factory: Callable,
    scheduler_factory: Callable,
    config: MachineConfig,
    seed: int,
    baseline: HardenedResult,
    watchdog: Watchdog,
    engine: str = "stepped",
) -> CampaignRow:
    expects_timeout = cname in EXPECTS_TIMEOUT
    try:
        result = run_hardened(
            factory,
            config,
            scheduler_factory,
            plan=plan,
            seed=seed,
            watchdog=watchdog,
            engine=engine,
        )
    except WatchdogTimeout as timeout:
        done = sum(1 for s in timeout.partial if s[3] == "done")
        detail = f"{done}/{len(timeout.partial)} threads finished; {timeout}"
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="watchdog-timeout",
            ok=expects_timeout,
            detail=detail if not expects_timeout else f"{done}/"
            f"{len(timeout.partial)} threads finished before diagnosis",
        )
    except Exception as exc:  # an unhardened escape is a campaign failure
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="ERROR",
            ok=False,
            detail=f"{type(exc).__name__}: {exc}",
        )
    if expects_timeout:
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="completed",
            ok=False,
            detail="expected a WatchdogTimeout diagnostic, run completed",
            result=result,
        )
    identical = result.signature == baseline.signature
    slowdown = (
        result.perf.cycles / baseline.perf.cycles
        if baseline.perf.cycles
        else None
    )
    return CampaignRow(
        workload=wname,
        policy=policy,
        fault_class=cname,
        outcome="identical" if identical else "DIVERGED",
        ok=identical,
        slowdown=slowdown,
        attempts=result.attempts,
        detail=(
            ""
            if identical
            else _diff_signatures(baseline.signature, result.signature)
        ),
        result=result,
    )


def format_campaign(rows: List[CampaignRow]) -> str:
    """Render campaign rows as the bench/CLI table."""
    table = format_table(
        ["workload", "policy", "fault class", "outcome", "slowdown",
         "tries", "ok"],
        [
            (
                r.workload,
                r.policy,
                r.fault_class,
                r.outcome,
                "-" if r.slowdown is None else f"{r.slowdown:.2f}x",
                r.attempts,
                "ok" if r.ok else "FAIL",
            )
            for r in rows
        ],
        title="fault campaign (hints must never affect correctness)",
    )
    failures = [r for r in rows if not r.ok]
    lines = [table]
    for r in failures:
        lines.append(
            f"FAIL {r.workload}/{r.policy}/{r.fault_class}: {r.detail}"
        )
    lines.append(
        f"{len(rows) - len(failures)}/{len(rows)} cells honoured the "
        f"hint contract"
    )
    return "\n".join(lines)
