"""The fault campaign: chaos-test the paper's robustness contract.

Section 2.3 of the paper argues that sharing annotations and performance
counter readings are *hints*: "incorrect information may affect
performance, but it does not affect the correctness of the program."
``run_campaign`` turns that sentence into an executable assertion: for
each (workload, policy) pair it runs a fault-free baseline, then replays
the run under every fault class in :data:`~repro.faults.plan.
FAULT_CLASSES`, and compares per-thread result signatures
(:func:`~repro.sim.driver.workload_signature`).

Expected outcomes, per fault class:

- hint faults (``annotation_*``, ``counter_*``) and absorbed thread
  delays: the run completes with a **bit-identical** signature, within a
  bounded slowdown;
- ``thread_crash``: the watchdog retries with a reseeded plan and the
  surviving attempt's signature is bit-identical;
- ``thread_livelock``: the run does *not* complete -- the watchdog must
  convert the hang into a :class:`~repro.threads.errors.WatchdogTimeout`
  diagnostic, which the campaign records as the expected outcome.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.faults.plan import EXPECTS_TIMEOUT, FAULT_CLASSES, FaultPlan
from repro.machine.configs import SMALL, MachineConfig
from repro.sched import SCHEDULERS
from repro.sim.driver import (
    HardenedResult,
    Watchdog,
    run_hardened,
    workload_signature,
)
from repro.sim.report import format_table
from repro.threads.errors import WatchdogTimeout
from repro.workloads.mergesort import MergeWorkload
from repro.workloads.params import MergeParams, PhotoParams, TasksParams, TspParams
from repro.workloads.photo import PhotoWorkload
from repro.workloads.randomwalk import RandomWalkWorkload
from repro.workloads.tasks import TasksWorkload
from repro.workloads.tsp import TspWorkload


def campaign_workloads(scale: str = "smoke") -> Dict[str, Callable]:
    """Workload factories for the campaign.

    ``smoke`` shrinks every application so a full fault sweep stays in
    seconds; ``default`` uses the experiments' default parameters.
    """
    if scale == "smoke":
        return {
            "randomwalk": lambda: RandomWalkWorkload(
                total_touches=4096, periods=3
            ),
            "tasks": lambda: TasksWorkload(
                TasksParams(num_tasks=24, periods=4)
            ),
            "merge": lambda: MergeWorkload(
                MergeParams(num_elements=4000, leaf_cutoff=250)
            ),
            "photo": lambda: PhotoWorkload(
                PhotoParams(width=128, height=32)
            ),
            "tsp": lambda: TspWorkload(
                TspParams(num_cities=12, branch_levels=4)
            ),
        }
    if scale == "default":
        return {
            "randomwalk": lambda: RandomWalkWorkload(),
            "tasks": lambda: TasksWorkload(),
            "merge": lambda: MergeWorkload(),
            "photo": lambda: PhotoWorkload(),
            "tsp": lambda: TspWorkload(),
        }
    raise ValueError(f"unknown campaign scale {scale!r}")


@dataclass
class CampaignRow:
    """Outcome of one (workload, policy, fault class) cell."""

    workload: str
    policy: str
    fault_class: str
    outcome: str  # "identical" | "watchdog-timeout" | "DIVERGED" | "ERROR"
    ok: bool  # outcome matches the fault class's contract
    slowdown: Optional[float] = None  # cycles vs fault-free baseline
    attempts: int = 1
    detail: str = ""
    result: Optional[HardenedResult] = field(default=None, repr=False)


def _diff_signatures(base, faulty) -> str:
    """First few per-thread differences, for the diagnostic column."""
    base_only = Counter(base) - Counter(faulty)
    faulty_only = Counter(faulty) - Counter(base)
    diffs = [f"baseline-only {e}" for e in sorted(base_only)[:3]]
    diffs += [f"faulty-only {e}" for e in sorted(faulty_only)[:3]]
    return "; ".join(diffs)


def run_campaign(
    workloads: Optional[Dict[str, Callable]] = None,
    policies: Iterable[str] = ("fcfs", "lff"),
    fault_classes: Optional[Iterable[str]] = None,
    config: MachineConfig = SMALL,
    seed: int = 0,
    watchdog_factory: Optional[Callable[[], Watchdog]] = None,
) -> List[CampaignRow]:
    """Run the full fault matrix; returns one row per cell.

    Every row's ``ok`` means "the contract held": hint faults left
    results bit-identical, crashes were survived by retry, livelocks
    became watchdog diagnostics.  A ``DIVERGED`` or ``ERROR`` row is a
    genuine robustness bug.
    """
    if workloads is None:
        workloads = campaign_workloads("smoke")
    if fault_classes is None:
        fault_classes = list(FAULT_CLASSES)
    if watchdog_factory is None:
        watchdog_factory = lambda: Watchdog(step_budget=50_000, max_chunks=40)

    rows: List[CampaignRow] = []
    for wname, factory in workloads.items():
        for policy in policies:
            scheduler_factory = SCHEDULERS[policy]
            baseline = run_hardened(
                factory,
                config,
                scheduler_factory,
                plan=None,
                seed=seed,
                watchdog=watchdog_factory(),
            )
            for cname in fault_classes:
                plan = FAULT_CLASSES[cname](seed)
                rows.append(
                    _run_cell(
                        wname,
                        policy,
                        cname,
                        plan,
                        factory,
                        scheduler_factory,
                        config,
                        seed,
                        baseline,
                        watchdog_factory(),
                    )
                )
    return rows


def _run_cell(
    wname: str,
    policy: str,
    cname: str,
    plan: FaultPlan,
    factory: Callable,
    scheduler_factory: Callable,
    config: MachineConfig,
    seed: int,
    baseline: HardenedResult,
    watchdog: Watchdog,
) -> CampaignRow:
    expects_timeout = cname in EXPECTS_TIMEOUT
    try:
        result = run_hardened(
            factory,
            config,
            scheduler_factory,
            plan=plan,
            seed=seed,
            watchdog=watchdog,
        )
    except WatchdogTimeout as timeout:
        done = sum(1 for s in timeout.partial if s[3] == "done")
        detail = f"{done}/{len(timeout.partial)} threads finished; {timeout}"
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="watchdog-timeout",
            ok=expects_timeout,
            detail=detail if not expects_timeout else f"{done}/"
            f"{len(timeout.partial)} threads finished before diagnosis",
        )
    except Exception as exc:  # an unhardened escape is a campaign failure
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="ERROR",
            ok=False,
            detail=f"{type(exc).__name__}: {exc}",
        )
    if expects_timeout:
        return CampaignRow(
            workload=wname,
            policy=policy,
            fault_class=cname,
            outcome="completed",
            ok=False,
            detail="expected a WatchdogTimeout diagnostic, run completed",
            result=result,
        )
    identical = result.signature == baseline.signature
    slowdown = (
        result.perf.cycles / baseline.perf.cycles
        if baseline.perf.cycles
        else None
    )
    return CampaignRow(
        workload=wname,
        policy=policy,
        fault_class=cname,
        outcome="identical" if identical else "DIVERGED",
        ok=identical,
        slowdown=slowdown,
        attempts=result.attempts,
        detail=(
            ""
            if identical
            else _diff_signatures(baseline.signature, result.signature)
        ),
        result=result,
    )


def format_campaign(rows: List[CampaignRow]) -> str:
    """Render campaign rows as the bench/CLI table."""
    table = format_table(
        ["workload", "policy", "fault class", "outcome", "slowdown",
         "tries", "ok"],
        [
            (
                r.workload,
                r.policy,
                r.fault_class,
                r.outcome,
                "-" if r.slowdown is None else f"{r.slowdown:.2f}x",
                r.attempts,
                "ok" if r.ok else "FAIL",
            )
            for r in rows
        ],
        title="fault campaign (hints must never affect correctness)",
    )
    failures = [r for r in rows if not r.ok]
    lines = [table]
    for r in failures:
        lines.append(
            f"FAIL {r.workload}/{r.policy}/{r.fault_class}: {r.detail}"
        )
    lines.append(
        f"{len(rows) - len(failures)}/{len(rows)} cells honoured the "
        f"hint contract"
    )
    return "\n".join(lines)
