"""On-line expected-footprint bookkeeping with lazy decay.

The model must be evaluated "on-line at the thread context switch time"
(section 2.1) without touching every thread: recomputing all footprints
would cost O(T) per switch, which "would not achieve any performance gains
for fine-grained parallel applications with large T" (section 4.1).

The trick (the same one the priority schemes exploit): every thread
*independent* of the blocker decays by exactly the same factor ``k**n``,
so each per-(cpu, thread) entry stores its expected footprint together
with the processor's cumulative miss count ``m`` at the moment it was last
materialised.  The current value is ``stored * k**(m_now - m_stored)``,
computable on demand; only the blocking thread and its d graph-dependents
are eagerly rewritten at a switch.

This estimator is the *reference* implementation of the model (used by the
evaluation and by schedulers that want raw footprints, e.g. threshold
checks); the log-space priority schemes in :mod:`repro.core.priorities`
are the paper's production fast path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.model import SharedStateModel
from repro.core.sharing import SharingGraph


@dataclass
class _Entry:
    """Expected footprint of one thread on one cpu, as of miss count m."""

    value: float
    at_misses: int


class FootprintEstimator:
    """Per-(cpu, thread) expected footprints, updated in O(d) per switch."""

    def __init__(
        self,
        model: SharedStateModel,
        graph: SharingGraph,
        num_cpus: int,
    ) -> None:
        self.model = model
        self.graph = graph
        self.num_cpus = num_cpus
        self._log_k = math.log(model.k)
        # cumulative miss count per cpu, as fed through observe_interval()
        self._misses: List[int] = [0] * num_cpus
        self._entries: List[Dict[int, _Entry]] = [{} for _ in range(num_cpus)]
        # miss count at the current thread's dispatch, per cpu
        self._dispatch_misses: List[Optional[Tuple[int, int]]] = [None] * num_cpus

    # -- queries -------------------------------------------------------------

    def cumulative_misses(self, cpu: int) -> int:
        """m(t): this cpu's miss total as seen by the estimator."""
        return self._misses[cpu]

    def footprint(self, cpu: int, tid: int) -> float:
        """Current expected footprint of ``tid`` in ``cpu``'s cache."""
        entry = self._entries[cpu].get(tid)
        if entry is None:
            return 0.0
        return self._decayed(entry, self._misses[cpu])

    def _decayed(self, entry: _Entry, now: int) -> float:
        elapsed = now - entry.at_misses
        if elapsed == 0:
            return entry.value
        return entry.value * math.exp(elapsed * self._log_k)

    def footprints_on(self, cpu: int) -> Dict[int, float]:
        """All known (thread -> current footprint) for one cpu."""
        now = self._misses[cpu]
        return {
            tid: self._decayed(entry, now)
            for tid, entry in self._entries[cpu].items()
        }

    # -- lifecycle events ------------------------------------------------------

    def on_dispatch(self, cpu: int, tid: int) -> None:
        """Thread ``tid`` starts a scheduling interval on ``cpu``."""
        self._dispatch_misses[cpu] = (tid, self._misses[cpu])

    def on_block(self, cpu: int, tid: int, interval_misses: int) -> None:
        """Thread ``tid`` blocks on ``cpu`` after ``interval_misses`` misses
        (the number the performance counters reported for the interval).

        Applies case 1 to the blocker, case 3 to each of its dependents,
        and leaves everything else to lazy case-2 decay.
        """
        if interval_misses < 0:
            raise ValueError("miss counts must be non-negative")
        dispatched = self._dispatch_misses[cpu]
        if dispatched is None or dispatched[0] != tid:
            raise RuntimeError(
                f"thread {tid} blocking on cpu {cpu} was never dispatched there"
            )
        m0 = dispatched[1]
        self._dispatch_misses[cpu] = None
        entries = self._entries[cpu]
        n_cache = self.model.num_lines

        # Case 1: the blocker itself.
        s0 = self._value_at(entries.get(tid), m0)
        decay_n = self.model.decay(interval_misses)
        new_m = m0 + interval_misses
        entries[tid] = _Entry(n_cache - (n_cache - s0) * decay_n, new_m)

        # Case 3: the blocker's dependents (O(d)).
        for dep_tid, q in self.graph.dependents(tid):
            target = q * n_cache
            dep_s0 = self._value_at(entries.get(dep_tid), m0)
            entries[dep_tid] = _Entry(
                target - (target - dep_s0) * decay_n, new_m
            )

        # Case 2 is implicit: everyone else decays lazily.
        self._misses[cpu] = new_m

    def _value_at(self, entry: Optional[_Entry], misses: int) -> float:
        """Materialise an entry's value at miss count ``misses``."""
        if entry is None:
            return 0.0
        return self._decayed(entry, misses)

    def forget(self, tid: int) -> None:
        """Drop a finished thread from every cpu's table."""
        for entries in self._entries:
            entries.pop(tid, None)

    def prune(self, cpu: int, threshold: float) -> List[int]:
        """Drop entries whose footprint fell below ``threshold`` lines;
        returns the dropped thread ids.  Bounds table sizes the same way
        the schedulers bound their heaps (section 5)."""
        now = self._misses[cpu]
        entries = self._entries[cpu]
        victims = [
            tid
            for tid, entry in entries.items()
            if self._decayed(entry, now) < threshold
        ]
        for tid in victims:
            del entries[tid]
        return victims

    def best_cpu(self, tid: int) -> Optional[int]:
        """The cpu where ``tid`` has its largest expected footprint, or
        ``None`` if it has no state anywhere."""
        best, best_fp = None, 0.0
        for cpu in range(self.num_cpus):
            fp = self.footprint(cpu, tid)
            if fp > best_fp:
                best, best_fp = cpu, fp
        return best
