"""The state dependency graph built by ``at_share`` annotations.

Section 2.3: "user annotations specify a directed shared state dependency
graph G=(V,E) and sharing coefficients q_ij in [0,1] associated with each
arc (t_i, t_j) in E ... the value of q_ij specifies what portion of the
state of thread t_i is shared with the state of thread t_j."

Direction matters: the *destination* of an edge depends on the *source*
(the cached state of t_j depends on the activity of t_i).  In the paper's
mergesort example the children annotate ``at_share(child, parent, 1.0)``
because all of a child's state is contained in the parent's; the parent
prefetches nothing for the children, so no parent->child edges exist.

Annotations are hints only: nothing in this module affects program
correctness, and the graph is "a complete graph with unspecified edges
having 0 coefficients" -- setting a coefficient to 0 removes the edge.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class SharingGraph:
    """Directed, weighted, dynamically updated dependency graph."""

    def __init__(self) -> None:
        self._out: Dict[int, Dict[int, float]] = {}
        self._in: Dict[int, Dict[int, float]] = {}

    def share(self, src: int, dst: int, q: float) -> None:
        """Record that fraction ``q`` of ``src``'s state is shared with
        ``dst`` (the ``at_share(src, dst, q)`` annotation).

        Re-annotating an existing edge changes its weight; ``q = 0``
        removes the edge.  Self-edges are meaningless and rejected.
        """
        if src == dst:
            raise ValueError("a thread cannot share state with itself")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
        if q == 0.0:
            self._remove_edge(src, dst)
            return
        self._out.setdefault(src, {})[dst] = q
        self._in.setdefault(dst, {})[src] = q

    def _remove_edge(self, src: int, dst: int) -> None:
        out = self._out.get(src)
        if out is not None:
            out.pop(dst, None)
            if not out:
                del self._out[src]
        incoming = self._in.get(dst)
        if incoming is not None:
            incoming.pop(src, None)
            if not incoming:
                del self._in[dst]

    def coefficient(self, src: int, dst: int) -> float:
        """q_{src,dst}; 0 for unannotated pairs (the complete-graph view)."""
        return self._out.get(src, {}).get(dst, 0.0)

    def dependents(self, tid: int) -> List[Tuple[int, float]]:
        """Threads whose cached state depends on ``tid``'s activity:
        the destinations of ``tid``'s out-edges, with coefficients.

        This is the set the scheduler must update at a context switch; its
        size is the out-degree d in the paper's O(d) cost bound.
        """
        return list(self._out.get(tid, {}).items())

    def dependencies(self, tid: int) -> List[Tuple[int, float]]:
        """Threads whose activity ``tid``'s cached state depends on
        (sources of in-edges), with coefficients."""
        return list(self._in.get(tid, {}).items())

    def out_degree(self, tid: int) -> int:
        """d, the number of threads affected when ``tid`` blocks."""
        return len(self._out.get(tid, {}))

    def remove_thread(self, tid: int) -> None:
        """Drop a finished thread and all its edges."""
        for dst in list(self._out.get(tid, {})):
            self._remove_edge(tid, dst)
        for src in list(self._in.get(tid, {})):
            self._remove_edge(src, tid)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """All (src, dst, q) triples currently in the graph."""
        for src, out in self._out.items():
            for dst, q in out.items():
                yield (src, dst, q)

    def num_edges(self) -> int:
        """Total annotated edges."""
        return sum(len(out) for out in self._out.values())

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        src, dst = edge
        return dst in self._out.get(src, {})
