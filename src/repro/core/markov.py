"""The Appendix's Markov-chain derivation, executable.

The paper models the cached state of a dependent thread ``C`` while thread
``A`` takes misses as a birth-death Markov chain over states
``i = 0 .. N`` (the number of C's lines resident).  A single miss by A
moves the chain:

- up, with probability ``p_{i,i+1} = q * (N - i) / N`` (the new line is
  shared with C and lands on a non-C line);
- down, with probability ``p_{i,i-1} = (1 - q) * i / N`` (the new line is
  not shared and evicts a C line);
- otherwise it stays (shared-over-C or unshared-over-non-C).

The key algebraic fact (used to telescope the matrix power) is that the
identity vector ``T0 = [0, 1, ..., N]`` satisfies ``M T0 = k T0 + q e``
with ``k = (N-1)/N``, which yields the closed form

    E_n[F_C] = q*N - (q*N - S_C) * k**n

This module provides the transition matrix, exact expectation by repeated
matrix-vector products, and the chain's stationary distribution
(Binomial(N, q)), all of which the test suite checks against the closed
form in :mod:`repro.core.model`.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def dependent_transition_matrix(num_lines: int, q: float) -> np.ndarray:
    """The (N+1) x (N+1) tri-diagonal generator matrix M.

    ``m[i, j]`` is the probability that one miss by the running thread
    moves C's resident-line count from ``i`` to ``j``.
    """
    if num_lines < 1:
        raise ValueError("need at least one cache line")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
    n = num_lines
    i = np.arange(n + 1, dtype=float)
    up = q * (n - i) / n  # p_{i,i+1}
    down = (1.0 - q) * i / n  # p_{i,i-1}
    stay = 1.0 - up - down
    m = np.zeros((n + 1, n + 1))
    m[np.arange(n + 1), np.arange(n + 1)] = stay
    m[np.arange(n), np.arange(1, n + 1)] = up[:-1]
    m[np.arange(1, n + 1), np.arange(n)] = down[1:]
    return m


def expected_footprint_markov(
    num_lines: int, q: float, initial: int, misses: int
) -> float:
    """Exact E[F_C] after ``misses`` misses, by iterating the chain.

    Uses the expectation-vector recurrence ``T <- M T`` starting from
    ``T0 = [0..N]`` (so ``T_n[S_C]`` is the answer), which is O(N) per
    step thanks to the tri-diagonal structure.
    """
    if not 0 <= initial <= num_lines:
        raise ValueError(f"initial footprint must be in [0, {num_lines}]")
    if misses < 0:
        raise ValueError("miss count must be non-negative")
    n = num_lines
    i = np.arange(n + 1, dtype=float)
    up = q * (n - i) / n
    down = (1.0 - q) * i / n
    stay = 1.0 - up - down
    t = i.copy()
    for _ in range(misses):
        # (M t)_i = down_i * t_{i-1} + stay_i * t_i + up_i * t_{i+1}
        shifted_down = np.empty_like(t)
        shifted_down[0] = 0.0
        shifted_down[1:] = t[:-1]
        shifted_up = np.empty_like(t)
        shifted_up[-1] = 0.0
        shifted_up[:-1] = t[1:]
        t = down * shifted_down + stay * t + up * shifted_up
    return float(t[initial])


def expectation_curve(
    num_lines: int, q: float, initial: int, max_misses: int
) -> np.ndarray:
    """``E[F_C]`` for every miss count ``n = 0 .. max_misses`` at once.

    One chain iteration yields the whole curve, so exhaustive sweeps (the
    model checker's brute-force validation of the closed form) cost
    O(N * max_misses) instead of O(N * max_misses**2) repeated calls to
    :func:`expected_footprint_markov`.
    """
    if not 0 <= initial <= num_lines:
        raise ValueError(f"initial footprint must be in [0, {num_lines}]")
    if max_misses < 0:
        raise ValueError("miss count must be non-negative")
    n = num_lines
    i = np.arange(n + 1, dtype=float)
    up = q * (n - i) / n
    down = (1.0 - q) * i / n
    stay = 1.0 - up - down
    t = i.copy()
    curve = np.empty(max_misses + 1, dtype=float)
    curve[0] = t[initial]
    for step in range(1, max_misses + 1):
        shifted_down = np.empty_like(t)
        shifted_down[0] = 0.0
        shifted_down[1:] = t[:-1]
        shifted_up = np.empty_like(t)
        shifted_up[-1] = 0.0
        shifted_up[:-1] = t[1:]
        t = down * shifted_down + stay * t + up * shifted_up
        curve[step] = t[initial]
    return curve


def distribution_after(
    num_lines: int, q: float, initial: int, misses: int
) -> np.ndarray:
    """Full probability distribution over footprint sizes after ``misses``.

    Row vector ``pi_n = pi_0 M^n`` with ``pi_0`` a point mass at
    ``initial``; useful for variance and tail analysis beyond the paper's
    expectations.
    """
    m = dependent_transition_matrix(num_lines, q)
    pi = np.zeros(num_lines + 1)
    pi[initial] = 1.0
    for _ in range(misses):
        pi = pi @ m
    return pi


def footprint_std(
    num_lines: int, q: float, initial: int, misses: int
) -> float:
    """Standard deviation of the dependent footprint after ``misses``.

    The paper schedules on expectations alone; the chain's full
    distribution quantifies when that is safe: the stationary spread is
    ``sqrt(N q (1-q))`` -- about 45 lines for N = 8192, q = 0.5 -- i.e.
    under 1% of a large E-cache, which is why expectation-based
    priorities rank threads reliably.
    """
    pi = distribution_after(num_lines, q, initial, misses)
    support = np.arange(num_lines + 1, dtype=float)
    mean = float(pi @ support)
    return float(np.sqrt(pi @ (support - mean) ** 2))


def stationary_distribution(num_lines: int, q: float) -> np.ndarray:
    """The chain's stationary distribution: Binomial(N, q).

    In steady state each cache line independently holds C-shared data with
    probability ``q``, so the resident count is Binomial(N, q) -- whose
    mean ``q*N`` is exactly the closed form's asymptote.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
    return stats.binom.pmf(np.arange(num_lines + 1), num_lines, q)
