"""The shared-state cache model (paper section 2.4).

For a direct-mapped cache of ``N`` lines, suppose thread ``A`` runs on a
processor and takes ``n`` misses (as reported by the performance counters)
before blocking.  With ``k = (N-1)/N`` and accesses assumed independent and
uniformly distributed over cache lines, the expected footprints at the
context switch are:

- **case 1, the blocking thread itself** (initial footprint ``S_A``)::

      E[F_A] = N - (N - S_A) * k**n

- **case 2, a thread independent of A** (initial footprint ``S_B``)::

      E[F_B] = S_B * k**n

- **case 3, a thread dependent on A** with sharing coefficient
  ``q = q_{A,C}`` (the weight of edge (A, C) in the dependency graph)::

      E[F_C] = q*N - (q*N - S_C) * k**n

Case 3 is the general law: substituting ``q = 1`` (complete inclusion)
recovers case 1 and ``q = 0`` (no shared data) recovers case 2.  The
Markov-chain derivation behind case 3 lives in :mod:`repro.core.markov`.

The model's stated domain is "large off-chip physical direct-mapped caches"
(section 2.1); its known failure modes -- reference clustering, conflict
misses, invalidations -- are reproduced and measured by the Figure 5/7
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[int, float, np.ndarray]


def _validate_footprint(value: ArrayLike, limit: float, what: str) -> None:
    arr = np.asarray(value, dtype=float)
    if np.any(arr < 0) or np.any(arr > limit):
        raise ValueError(f"{what} must lie in [0, {limit}], got {value!r}")


@dataclass(frozen=True)
class SharedStateModel:
    """The closed-form model for one cache of ``num_lines`` lines."""

    num_lines: int

    def __post_init__(self) -> None:
        if self.num_lines < 2:
            raise ValueError("the model needs a cache of at least 2 lines")

    @property
    def k(self) -> float:
        """Per-miss survival probability of any fixed line: (N-1)/N."""
        return (self.num_lines - 1) / self.num_lines

    def decay(self, misses: ArrayLike) -> ArrayLike:
        """``k**n``, the survival probability after ``n`` misses.

        Computed as ``exp(n * log k)`` so vectorised inputs are cheap and
        large ``n`` underflows gracefully to 0.
        """
        n = np.asarray(misses, dtype=float)
        if np.any(n < 0):
            raise ValueError("miss counts must be non-negative")
        out = np.exp(n * math.log(self.k))
        return float(out) if np.isscalar(misses) or out.ndim == 0 else out

    # -- the three cases ----------------------------------------------------

    def expected_running(self, initial: ArrayLike, misses: ArrayLike) -> ArrayLike:
        """Case 1: footprint of the thread that took the ``misses`` itself."""
        _validate_footprint(initial, self.num_lines, "initial footprint")
        n_lines = self.num_lines
        return n_lines - (n_lines - np.asarray(initial, dtype=float)) * self.decay(
            misses
        )

    def expected_independent(
        self, initial: ArrayLike, misses: ArrayLike
    ) -> ArrayLike:
        """Case 2: footprint of a thread sharing nothing with the runner."""
        _validate_footprint(initial, self.num_lines, "initial footprint")
        return np.asarray(initial, dtype=float) * self.decay(misses)

    def expected_dependent(
        self, initial: ArrayLike, q: float, misses: ArrayLike
    ) -> ArrayLike:
        """Case 3: footprint of a thread with sharing coefficient ``q``.

        ``q`` is the weight of the dependency-graph edge from the running
        thread to this one: the portion of the runner's state shared with
        this thread.
        """
        _validate_footprint(initial, self.num_lines, "initial footprint")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
        target = q * self.num_lines
        return target - (target - np.asarray(initial, dtype=float)) * self.decay(
            misses
        )

    # -- derived quantities --------------------------------------------------

    def asymptote(self, q: float) -> float:
        """The footprint a dependent thread converges to: ``q * N``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
        return q * self.num_lines

    def misses_to_decay(self, fraction: float) -> float:
        """Misses needed for an independent footprint to decay to
        ``fraction`` of its initial size (the half-life at 0.5)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return math.log(fraction) / math.log(self.k)

    def misses_to_reach(
        self, target: float, initial: float, q: float = 1.0
    ) -> float:
        """Misses needed for a dependent footprint to go from ``initial``
        to ``target`` (the closed form inverted):

            n = log((qN - target) / (qN - initial)) / log k

        Useful for calibration: how long until a thread's state is "warm
        enough".  ``target`` must lie strictly between ``initial`` and the
        asymptote ``q*N`` (exclusive), otherwise no finite n exists.
        """
        asymptote = self.asymptote(q)
        _validate_footprint(initial, self.num_lines, "initial footprint")
        _validate_footprint(target, self.num_lines, "target footprint")
        lo, hi = sorted((initial, asymptote))
        if not (lo < target < hi) or initial == asymptote:
            raise ValueError(
                f"target {target} not reachable from {initial} "
                f"(asymptote {asymptote})"
            )
        return math.log((asymptote - target) / (asymptote - initial)) / math.log(
            self.k
        )

    def reload_transient(self, initial: ArrayLike, misses: ArrayLike) -> ArrayLike:
        """Expected lines a resuming thread must reload: its cold state.

        This is the cache-reload transient of Thiebaut and Stone (section
        2.1): the part of the footprint lost while the thread was away,
        given it once held ``initial`` lines and the processor has since
        taken ``misses`` misses.
        """
        remaining = self.expected_independent(initial, misses)
        return np.asarray(initial, dtype=float) - remaining

    def cache_reload_ratio(
        self, last_footprint: ArrayLike, current: ArrayLike
    ) -> ArrayLike:
        """Squillante-Lazowska reload ratio R = (F_last - F) / F_last
        (section 4.2); 0 when the thread's state is fully cached, 1 when
        none of it is.  ``last_footprint`` of 0 yields R = 0 by convention
        (a thread with no state has nothing to reload)."""
        last = np.asarray(last_footprint, dtype=float)
        cur = np.asarray(current, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(last > 0, (last - cur) / np.where(last > 0, last, 1), 0.0)
        return float(ratio) if ratio.ndim == 0 else ratio
