"""Log-space priority schemes for LFF and CRT scheduling (sections 4.1-4.2).

The naive way to schedule by expected footprint recomputes every thread's
footprint at every context switch: O(T) work.  The paper instead chooses
priority functions that are *order-equivalent* to the footprints yet
constant for threads independent of the blocker, so only the blocker and
its d dependents are touched:

- **LFF** (Largest Footprint First)::

      p(t) = log(E[F]) - m(t) * log k

  where ``m(t)`` is the processor's cumulative miss count and
  ``k = (N-1)/N``.  Since every independent footprint decays by exactly
  ``k**(m - m_stored)``, the two terms cancel and the stored priority stays
  valid forever.

- **CRT** (smallest Cache-Reload raTio, after Squillante & Lazowska)::

      p(t) = log(E[F]) - log(E[F_last]) - m(t) * log k

  where ``E[F_last]`` is the thread's expected footprint when it last
  finished executing on this processor.  Higher priority = lower expected
  reload ratio.  A freshly blocked thread has R = 0 and priority
  ``-m(t) * log k``.

Both schemes precompute ``k**n`` for a wide range of ``n`` and ``log F``
for all integer footprints ``0 < F <= N``, so a priority update costs a
handful of floating-point instructions (Table 3) -- and exactly zero for
independent threads.  Every FP operation performed is tallied in an
:class:`UpdateCost` so the Table 3 bench reports measured, not asserted,
costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import SharedStateModel
from repro.core.sharing import SharingGraph


class PrecomputedTables:
    """The static tables of section 4.1: powers of k and logs of footprints."""

    def __init__(self, num_lines: int, max_power: Optional[int] = None) -> None:
        if num_lines < 2:
            raise ValueError("need a cache of at least 2 lines")
        self.num_lines = num_lines
        self.k = (num_lines - 1) / num_lines
        self.log_k = math.log(self.k)
        if max_power is None:
            # k**n underflows usefully to ~1e-7 of scale by n = 16N;
            # beyond the table we treat the power as exactly 0.
            max_power = 16 * num_lines
        self.max_power = max_power
        self._k_pow = np.exp(np.arange(max_power + 1, dtype=float) * self.log_k)
        # log F for integer footprints 1..N; index 0 backs the F=0 clamp.
        self._log_f = np.log(np.arange(1, num_lines + 1, dtype=float))

    def pow_k(self, n: int) -> float:
        """k**n via table lookup (0.0 beyond the table)."""
        if n < 0:
            raise ValueError("exponent must be non-negative")
        if n > self.max_power:
            return 0.0
        return float(self._k_pow[n])

    def log_footprint(self, footprint: float) -> float:
        """log of a footprint, via the integer-indexed table.

        The footprint is rounded to the nearest line and clamped to
        [1, N], matching the paper's precomputation of log(F) for
        0 < F <= N.
        """
        idx = int(round(footprint))
        if idx < 1:
            idx = 1
        elif idx > self.num_lines:
            idx = self.num_lines
        return float(self._log_f[idx - 1])


@dataclass
class UpdateCost:
    """Floating-point instruction tallies per update case (Table 3)."""

    blocking: int = 0
    dependent: int = 0
    independent: int = 0
    blocking_updates: int = 0
    dependent_updates: int = 0

    def per_update(self) -> Dict[str, float]:
        """Mean FP instructions per update of each kind."""
        return {
            "blocking": self.blocking / max(1, self.blocking_updates),
            "dependent": self.dependent / max(1, self.dependent_updates),
            "independent": 0.0,
        }


@dataclass
class PriorityEntry:
    """Per-(cpu, thread) scheduling state.

    ``priority`` is directly comparable with any other entry on the same
    cpu regardless of when either was written -- that is the whole point
    of the scheme.  ``footprint``/``at_misses`` allow materialising the
    current expected footprint for threshold checks.
    """

    priority: float
    footprint: float
    at_misses: int
    last_footprint: float = 0.0  # CRT's E[F_last]; unused by LFF
    #: bumped on every priority write so heap entries can be lazily
    #: invalidated when a dependent's priority changes under them
    version: int = 0


class PriorityScheme:
    """Shared machinery: per-cpu miss clocks, entries, cost accounting."""

    name = "abstract"

    def __init__(
        self,
        model: SharedStateModel,
        graph: SharingGraph,
        num_cpus: int,
        tables: Optional[PrecomputedTables] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.num_cpus = num_cpus
        self.tables = tables or PrecomputedTables(model.num_lines)
        if self.tables.num_lines != model.num_lines:
            raise ValueError("tables built for a different cache size")
        self.cost = UpdateCost()
        self._misses: List[int] = [0] * num_cpus
        self._entries: List[Dict[int, PriorityEntry]] = [
            {} for _ in range(num_cpus)
        ]
        self._dispatch_misses: List[Optional[Tuple[int, int]]] = [None] * num_cpus

    # -- bookkeeping ---------------------------------------------------------

    def cumulative_misses(self, cpu: int) -> int:
        """m(t) for one cpu, as fed through on_block."""
        return self._misses[cpu]

    def entries(self, cpu: int) -> Dict[int, PriorityEntry]:
        """Live entries for one cpu (thread id -> entry)."""
        return self._entries[cpu]

    def entry(self, cpu: int, tid: int) -> Optional[PriorityEntry]:
        """The entry for a thread on a cpu, if any."""
        return self._entries[cpu].get(tid)

    def ensure_entry(self, cpu: int, tid: int) -> PriorityEntry:
        """Entry for a thread on a cpu, creating a cold one if absent."""
        entry = self._entries[cpu].get(tid)
        if entry is None:
            entry = self._fresh_entry(cpu)
            self._entries[cpu][tid] = entry
        return entry

    def current_footprint(self, cpu: int, tid: int) -> float:
        """Materialised expected footprint (for thresholds and reports).

        This is measurement/bookkeeping, not part of the per-switch fast
        path, so it is not tallied in :attr:`cost`.
        """
        entry = self._entries[cpu].get(tid)
        if entry is None:
            return 0.0
        return entry.footprint * self.tables.pow_k(
            self._misses[cpu] - entry.at_misses
        )

    def forget(self, tid: int) -> None:
        """Drop a finished thread everywhere."""
        for entries in self._entries:
            entries.pop(tid, None)

    def on_dispatch(self, cpu: int, tid: int) -> None:
        """Record the interval start (the counter value at dispatch)."""
        self._dispatch_misses[cpu] = (tid, self._misses[cpu])

    def on_block(self, cpu: int, tid: int, interval_misses: int) -> int:
        """Apply the scheme's updates when ``tid`` blocks on ``cpu`` having
        taken ``interval_misses`` misses.  Returns the number of entries
        touched (1 + number of dependents), the paper's O(d)."""
        if interval_misses < 0:
            raise ValueError("miss counts must be non-negative")
        dispatched = self._dispatch_misses[cpu]
        if dispatched is None or dispatched[0] != tid:
            raise RuntimeError(
                f"thread {tid} blocking on cpu {cpu} was never dispatched there"
            )
        m0 = dispatched[1]
        self._dispatch_misses[cpu] = None
        new_m = m0 + interval_misses
        touched = 1
        self._update_blocker(cpu, tid, m0, interval_misses, new_m)
        for dep_tid, q in self.graph.dependents(tid):
            self._update_dependent(cpu, dep_tid, q, m0, interval_misses, new_m)
            touched += 1
        self._misses[cpu] = new_m
        return touched

    # -- helpers shared by both schemes ---------------------------------------

    def _fresh_entry(self, cpu: int) -> PriorityEntry:
        """A cold entry (no cached state) comparable with existing ones."""
        raise NotImplementedError

    def _update_blocker(
        self, cpu: int, tid: int, m0: int, n: int, new_m: int
    ) -> None:
        raise NotImplementedError

    def _update_dependent(
        self, cpu: int, tid: int, q: float, m0: int, n: int, new_m: int
    ) -> None:
        raise NotImplementedError

    def _materialise(self, entry: PriorityEntry, at: int) -> Tuple[float, int]:
        """Footprint of an entry at miss count ``at``; returns (value, flops)."""
        elapsed = at - entry.at_misses
        if elapsed == 0:
            return entry.footprint, 0
        return entry.footprint * self.tables.pow_k(elapsed), 1


class LFFScheme(PriorityScheme):
    """Largest Footprint First: p = log(E[F]) - m * log k (section 4.1)."""

    name = "lff"

    def _fresh_entry(self, cpu: int) -> PriorityEntry:
        m = self._misses[cpu]
        # log of the clamped empty footprint is log(1) = 0
        return PriorityEntry(
            priority=0.0 - m * self.tables.log_k,
            footprint=0.0,
            at_misses=m,
        )

    def _update_blocker(
        self, cpu: int, tid: int, m0: int, n: int, new_m: int
    ) -> None:
        t = self.tables
        entry = self.ensure_entry(cpu, tid)
        flops = 0
        s0, f = self._materialise(entry, m0)
        flops += f
        n_cache = self.model.num_lines
        new_fp = n_cache - (n_cache - s0) * t.pow_k(n)  # sub, mul, sub
        flops += 3
        priority = t.log_footprint(new_fp) - new_m * t.log_k  # mul, sub
        flops += 2
        entry.priority = priority
        entry.footprint = new_fp
        entry.at_misses = new_m
        entry.version += 1
        self.cost.blocking += flops
        self.cost.blocking_updates += 1

    def _update_dependent(
        self, cpu: int, tid: int, q: float, m0: int, n: int, new_m: int
    ) -> None:
        t = self.tables
        entry = self.ensure_entry(cpu, tid)
        flops = 0
        s0, f = self._materialise(entry, m0)
        flops += f
        target = q * self.model.num_lines  # mul
        flops += 1
        new_fp = target - (target - s0) * t.pow_k(n)  # sub, mul, sub
        flops += 3
        priority = t.log_footprint(new_fp) - new_m * t.log_k  # mul, sub
        flops += 2
        entry.priority = priority
        entry.footprint = new_fp
        entry.at_misses = new_m
        entry.version += 1
        self.cost.dependent += flops
        self.cost.dependent_updates += 1


class CRTScheme(PriorityScheme):
    """Smallest cache-reload ratio:
    p = log(E[F]) - log(E[F_last]) - m * log k (section 4.2)."""

    name = "crt"

    def _fresh_entry(self, cpu: int) -> PriorityEntry:
        m = self._misses[cpu]
        # E = E_last = 0 (clamped logs cancel): p = -m * log k.
        return PriorityEntry(
            priority=-m * self.tables.log_k,
            footprint=0.0,
            at_misses=m,
            last_footprint=0.0,
        )

    def _update_blocker(
        self, cpu: int, tid: int, m0: int, n: int, new_m: int
    ) -> None:
        t = self.tables
        entry = self.ensure_entry(cpu, tid)
        flops = 0
        s0, f = self._materialise(entry, m0)
        flops += f
        n_cache = self.model.num_lines
        new_fp = n_cache - (n_cache - s0) * t.pow_k(n)  # sub, mul, sub
        flops += 3
        # The blocker just executed: R = 0, so p = -m * log k (one mul with
        # -log k precomputed; we count the negation into the constant).
        priority = new_m * -t.log_k  # mul
        flops += 1
        entry.priority = priority
        entry.footprint = new_fp
        entry.last_footprint = new_fp
        entry.at_misses = new_m
        entry.version += 1
        self.cost.blocking += flops
        self.cost.blocking_updates += 1

    def _update_dependent(
        self, cpu: int, tid: int, q: float, m0: int, n: int, new_m: int
    ) -> None:
        t = self.tables
        entry = self.ensure_entry(cpu, tid)
        flops = 0
        s0, f = self._materialise(entry, m0)
        flops += f
        target = q * self.model.num_lines  # mul
        flops += 1
        new_fp = target - (target - s0) * t.pow_k(n)  # sub, mul, sub
        flops += 3
        priority = (
            t.log_footprint(new_fp)
            - t.log_footprint(entry.last_footprint)
            - new_m * t.log_k
        )  # sub, mul, sub
        flops += 3
        entry.priority = priority
        entry.footprint = new_fp
        entry.at_misses = new_m
        entry.version += 1
        self.cost.dependent += flops
        self.cost.dependent_updates += 1
