"""The associative-cache extension of the shared-state model.

The paper scopes its model to direct-mapped caches and notes "the
developed model can be extended to the associative cache case (although
the analytical results are likely to be more complex with a higher
runtime overhead)" (section 2.1).  This module carries out that
extension for W-way LRU caches and quantifies exactly the predicted
complexity/overhead trade-off.

Derivation.  Let the cache have ``S = N / W`` sets of ``W`` ways.  Under
the paper's independence assumption, each miss by the running thread
lands in a uniformly random set.  Consider a line of a *sleeping* thread
B resident in some set.  It is evicted when it becomes the LRU victim --
i.e. once its set has received ``W`` misses since the line was last
touched (each miss either fills an invalid way or evicts the current LRU;
after W misses a line untouched since the start is gone).  The number of
misses its set receives out of ``n`` total is Binomial(n, 1/S), so the
survival probability is the binomial tail

    P(survive n) = P(Binom(n, 1/S) <= W - 1)

and ``E[F_B] = S_B * P(survive n)``.  At ``W = 1`` this is
``P(Binom(n, 1/N) = 0) = (1 - 1/N)^n = k^n`` -- exactly the paper's
case 2, so the extension strictly generalises the original model.

For the *running* thread A (case 1), a set holding ``j`` of A's lines
loses none of them to A's own misses until the set fills; with every
resident line of A recently touched relative to incoming misses, A's
lines are at the MRU end and survive.  Growth is then limited only by
set collisions among A's own lines:

    E[F_A](n) = N - (N - S_A) * E_set[survival]  ~  N - (N - S_A) * k^n

remains a good approximation because A's misses displace *other* threads'
lines first; the associative ablation bench measures the residual error.

The ``W``-way survival requires a binomial tail per (n, W) pair -- the
"higher runtime overhead" the paper predicted.  :class:`AssocTables`
precomputes the tails so the per-switch cost stays a table lookup, at a
memory cost W times the direct-mapped table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import stats

ArrayLike = Union[int, float, np.ndarray]


@dataclass(frozen=True)
class AssociativeStateModel:
    """Expected footprints in a W-way LRU cache of ``num_lines`` lines."""

    num_lines: int
    ways: int = 1

    def __post_init__(self) -> None:
        if self.num_lines < 2:
            raise ValueError("the model needs a cache of at least 2 lines")
        if self.ways < 1 or self.num_lines % self.ways != 0:
            raise ValueError("ways must divide the number of cache lines")

    @property
    def num_sets(self) -> int:
        """S = N / W."""
        return self.num_lines // self.ways

    def survival(self, misses: ArrayLike) -> ArrayLike:
        """P(an untouched resident line survives ``n`` foreign misses).

        The binomial tail P(Binom(n, 1/S) <= W-1); reduces to k**n for
        the direct-mapped case.
        """
        n = np.asarray(misses, dtype=float)
        if np.any(n < 0):
            raise ValueError("miss counts must be non-negative")
        p_set = 1.0 / self.num_sets
        out = stats.binom.cdf(self.ways - 1, n, p_set)
        return float(out) if out.ndim == 0 else out

    def expected_independent(
        self, initial: ArrayLike, misses: ArrayLike
    ) -> ArrayLike:
        """Case 2 for a W-way cache: E[F_B] = S_B * P(survive n)."""
        initial = np.asarray(initial, dtype=float)
        if np.any(initial < 0) or np.any(initial > self.num_lines):
            raise ValueError("initial footprint out of range")
        return initial * self.survival(misses)

    def expected_running(self, initial: ArrayLike, misses: ArrayLike) -> ArrayLike:
        """Case 1 for a W-way cache (approximation; see module docstring)."""
        initial = np.asarray(initial, dtype=float)
        if np.any(initial < 0) or np.any(initial > self.num_lines):
            raise ValueError("initial footprint out of range")
        n_lines = self.num_lines
        k = (n_lines - 1) / n_lines
        n = np.asarray(misses, dtype=float)
        return n_lines - (n_lines - initial) * np.exp(n * math.log(k))

    def expected_dependent(
        self, initial: ArrayLike, q: float, misses: ArrayLike
    ) -> ArrayLike:
        """Case 3 for a W-way cache.

        Interpolates between growth toward q*N (shared installs, which
        LRU protects like the runner's own lines) and the W-way decay of
        the unshared part -- the same convex structure as the paper's
        closed form, with the associative survival in place of k**n.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"sharing coefficient must be in [0, 1], got {q}")
        initial = np.asarray(initial, dtype=float)
        if np.any(initial < 0) or np.any(initial > self.num_lines):
            raise ValueError("initial footprint out of range")
        target = q * self.num_lines
        return target - (target - initial) * self.survival(misses)

    def half_life(self) -> float:
        """Misses for an independent footprint to halve (numeric)."""
        lo, hi = 0.0, float(64 * self.num_lines * self.ways)
        for _ in range(64):
            mid = (lo + hi) / 2
            if self.survival(mid) > 0.5:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2


class AssocTables:
    """Precomputed W-way survival probabilities (the runtime fast path).

    The direct-mapped scheme needs one k**n table; the W-way scheme needs
    the binomial tail for every n up to the horizon -- the concrete
    "higher runtime overhead" of the extension.  Lookup cost stays O(1).
    """

    def __init__(self, num_lines: int, ways: int, max_misses: int = None):
        self.model = AssociativeStateModel(num_lines, ways)
        if max_misses is None:
            # survival becomes negligible within a few W*N misses
            max_misses = 16 * num_lines
        self.max_misses = max_misses
        self._table = np.asarray(
            self.model.survival(np.arange(max_misses + 1)), dtype=float
        )

    def survival(self, misses: int) -> float:
        """Table lookup; 0.0 beyond the horizon."""
        if misses < 0:
            raise ValueError("miss counts must be non-negative")
        if misses > self.max_misses:
            return 0.0
        return float(self._table[misses])

    @property
    def table_bytes(self) -> int:
        """Memory footprint of the table (the overhead being paid)."""
        return self._table.nbytes
