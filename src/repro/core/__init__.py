"""The paper's primary contribution: the shared-state cache model and the
locality priority schemes built on it.

- :mod:`repro.core.model` -- closed-form expected footprints (section 2.4).
- :mod:`repro.core.markov` -- the Appendix's Markov-chain derivation for
  dependent threads, kept as an executable cross-check of the closed form.
- :mod:`repro.core.sharing` -- the state dependency graph G built by
  ``at_share`` annotations (section 2.3).
- :mod:`repro.core.footprints` -- the on-line footprint estimator with lazy
  decay (the O(d)-per-switch bookkeeping of section 4).
- :mod:`repro.core.priorities` -- the LFF and CRT log-space priority
  schemes with precomputed tables and FP-operation accounting (sections
  4.1-4.2, Table 3).
"""

from repro.core.assoc import AssocTables, AssociativeStateModel
from repro.core.footprints import FootprintEstimator
from repro.core.markov import (
    dependent_transition_matrix,
    expected_footprint_markov,
    stationary_distribution,
)
from repro.core.model import SharedStateModel
from repro.core.priorities import (
    CRTScheme,
    LFFScheme,
    PriorityEntry,
    PriorityScheme,
    PrecomputedTables,
    UpdateCost,
)
from repro.core.sharing import SharingGraph

__all__ = [
    "AssocTables",
    "AssociativeStateModel",
    "CRTScheme",
    "FootprintEstimator",
    "LFFScheme",
    "PrecomputedTables",
    "PriorityEntry",
    "PriorityScheme",
    "SharedStateModel",
    "SharingGraph",
    "UpdateCost",
    "dependent_transition_matrix",
    "expected_footprint_markov",
    "stationary_distribution",
]
