"""Plain-text table formatting for experiment output.

The benches print the same rows/series the paper's tables and figures
report; this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(
    xs: Sequence[float], ys: Sequence[float], max_points: int = 12
) -> str:
    """Render a curve as a compact '(x, y) ...' sample list."""
    n = len(xs)
    if n == 0:
        return "(empty series)"
    step = max(1, n // max_points)
    points = [
        f"({_fmt(float(xs[i]))}, {_fmt(float(ys[i]))})"
        for i in range(0, n, step)
    ]
    if (n - 1) % step != 0:
        points.append(f"({_fmt(float(xs[-1]))}, {_fmt(float(ys[-1]))})")
    return " ".join(points)
