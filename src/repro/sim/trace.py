"""Reference-trace recording and offline footprint analysis.

The paper positions its model against the older, trace-driven
methodology: Thiebaut & Stone assumed footprints known; "Agarwal et al.
noted that no method to obtain such footprints was given and indicated
that it could be inferred by analyzing collected program traces off-line"
(section 2.1).  This module builds that off-line pipeline so the two
approaches can be compared head to head:

- :class:`ReferenceTraceRecorder` captures each thread's line-reference
  stream (with an explicit storage budget -- the cost that makes off-line
  analysis unattractive for a runtime system);
- :func:`footprint_curve_from_trace` replays a thread's trace through a
  private direct-mapped cache, producing the observed footprint as a
  function of misses -- exactly what the on-line model predicts from a
  counter value alone;
- :func:`reuse_distance_histogram` and :func:`working_set_sizes` are the
  standard trace analyses (stack distances, Denning working sets) a
  trace-driven study would report.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.threads.runtime import Observer, Runtime


class TraceBudgetExceeded(Exception):
    """The recorder hit its storage budget (the off-line cost made real)."""


class ReferenceTraceRecorder(Observer):
    """Records every thread's virtual-line reference stream.

    ``max_total_refs`` bounds memory; exceeding it either raises (default)
    or silently stops recording (``strict=False``), so experiments can
    report how much trace the off-line method needed.
    """

    def __init__(self, max_total_refs: int = 5_000_000, strict: bool = True):
        if max_total_refs <= 0:
            raise ValueError("the recorder needs a positive budget")
        self.max_total_refs = max_total_refs
        self.strict = strict
        self.total_refs = 0
        self.truncated = False
        self._chunks: Dict[int, List[np.ndarray]] = {}

    def record(self, tid: int, vlines: np.ndarray) -> None:
        """Append a batch of virtual line references for a thread."""
        if self.truncated:
            return
        if self.total_refs + vlines.size > self.max_total_refs:
            if self.strict:
                raise TraceBudgetExceeded(
                    f"trace exceeded {self.max_total_refs} references"
                )
            self.truncated = True
            return
        self._chunks.setdefault(tid, []).append(
            np.asarray(vlines, dtype=np.int64)
        )
        self.total_refs += vlines.size

    def trace(self, tid: int) -> np.ndarray:
        """The thread's full reference stream, in program order."""
        chunks = self._chunks.get(tid)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def threads(self) -> List[int]:
        """Tids with recorded references."""
        return sorted(self._chunks)

    @property
    def storage_bytes(self) -> int:
        """Bytes the recorded traces occupy (8 per reference)."""
        return 8 * self.total_refs


class TracingRuntimeAdapter(Observer):
    """Bridges the runtime's Touch events into a recorder.

    The runtime exposes each touch batch's *virtual* lines through
    ``runtime.last_touch_lines`` while it notifies observers; this adapter
    forwards them into the recorder under the touching thread's tid.
    """

    def __init__(self, runtime, recorder: ReferenceTraceRecorder):
        self.runtime = runtime
        self.recorder = recorder
        runtime.add_observer(self)

    def on_touch(self, cpu: int, thread, result) -> None:
        vlines = self.runtime.last_touch_lines
        if vlines is not None and vlines.size:
            self.recorder.record(thread.tid, vlines)


def record_workload_trace(
    workload,
    config,
    scheduler,
    seed: int = 0,
    engine: str = "stepped",
    max_total_refs: int = 5_000_000,
    strict: bool = True,
    log_events: bool = False,
) -> Tuple[ReferenceTraceRecorder, "Runtime"]:
    """Run a workload to completion while recording reference traces.

    Returns ``(recorder, runtime)``.  ``engine`` selects the scheduling
    loop (``"stepped"`` or ``"event"``); because the engines are
    bit-identical (docs/MODEL.md), the recorded traces are too, so the
    off-line analyses below can be driven from either.  ``log_events``
    additionally enables the event queue's audit log
    (``runtime.event_queue.log``) for timeline reconstruction -- see
    :func:`repro.sim.tracer.event_timeline`.
    """
    from repro.machine.smp import Machine

    machine = Machine(config, seed=seed)
    runtime = Runtime(machine, scheduler, engine=engine)
    if log_events:
        runtime.event_queue.enable_log()
    recorder = ReferenceTraceRecorder(
        max_total_refs=max_total_refs, strict=strict
    )
    TracingRuntimeAdapter(runtime, recorder)
    workload.build(runtime)
    runtime.run()
    return recorder, runtime


def footprint_curve_from_trace(
    trace: np.ndarray, cache_lines: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay a single thread's trace through a private direct-mapped
    cache; returns (cumulative misses, footprint) sampled at each miss.

    This is the off-line equivalent of the on-line model's case 1: what
    the thread's footprint would be after its first n misses, obtained by
    storing and replaying the whole trace rather than reading a counter.
    """
    if cache_lines <= 0:
        raise ValueError("cache must have at least one line")
    resident = np.full(cache_lines, -1, dtype=np.int64)
    footprint = 0
    misses = 0
    xs: List[int] = []
    ys: List[int] = []
    for line in np.asarray(trace, dtype=np.int64):
        idx = line % cache_lines
        if resident[idx] == line:
            continue
        if resident[idx] == -1:
            footprint += 1
        resident[idx] = line
        misses += 1
        xs.append(misses)
        ys.append(footprint)
    return np.asarray(xs, dtype=np.int64), np.asarray(ys, dtype=np.int64)


def reuse_distance_histogram(
    trace: np.ndarray, max_distance: Optional[int] = None
) -> Dict[int, int]:
    """LRU stack distances: unique lines touched between successive uses.

    Cold references get distance -1.  ``max_distance`` lumps longer
    distances into one bucket (keyed by ``max_distance``).
    """
    stack: "OrderedDict[int, None]" = OrderedDict()
    histogram: Dict[int, int] = {}
    for line in np.asarray(trace, dtype=np.int64).tolist():
        if line in stack:
            distance = 0
            for key in reversed(stack):
                if key == line:
                    break
                distance += 1
            if max_distance is not None and distance > max_distance:
                distance = max_distance
            stack.move_to_end(line)
        else:
            distance = -1
            stack[line] = None
        histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def working_set_sizes(trace: np.ndarray, window: int) -> np.ndarray:
    """Denning working sets: distinct lines in each trailing window."""
    if window <= 0:
        raise ValueError("window must be positive")
    trace = np.asarray(trace, dtype=np.int64)
    sizes = np.empty(max(0, trace.size - window + 1), dtype=np.int64)
    counts: Dict[int, int] = {}
    for i, line in enumerate(trace.tolist()):
        counts[line] = counts.get(line, 0) + 1
        if i >= window:
            old = int(trace[i - window])
            counts[old] -= 1
            if counts[old] == 0:
                del counts[old]
        if i >= window - 1:
            sizes[i - window + 1] = len(counts)
    return sizes
