"""Simulated-oracle cross-check for the analytic cache backend.

The ``analytic`` backend (:mod:`repro.machine.analytic`) prices touch
batches with the closed-form reuse-distance model instead of simulating
the cache.  That is only useful if its miss counts stay close to what
the reference simulator would have produced -- so this module runs the
same fixture workloads under both backends, compares the per-interval
miss streams, and pins a per-workload relative-error bound.  The
``analytic-oracle`` CI job runs exactly this sweep and fails when any
workload's error regresses past its pinned bound.

Comparison method
-----------------

Both runs use one cpu under bare FCFS (no scheduler memory), so the
dispatch order is backend-independent.  An :class:`IntervalTape`
observer records ``(thread name, misses)`` at every ``on_block``:

- when the two tapes *align* (same thread-name sequence -- the common
  case; wakeup timing can differ because cycle counts differ), the
  headline error is the normalised L1 distance between the interval
  miss streams: ``sum(|analytic_i - sim_i|) / sum(sim_i)``;
- when they do not align, the sweep falls back to per-thread miss
  totals, same normalisation -- coarser, but schedule-independent.

Either way the per-thread ground truth (refs, instructions, final
state) must be *identical* -- the backend only prices misses, it must
never change what the programs did.  ``signature_equal`` is asserted,
not bounded.

The pinned bounds are empirical, with headroom over the measured error
(see ``ORACLE_BOUNDS``); docs/MODEL.md "The analytic backend" explains
which model omissions produce which error (conflict structure -> merge
under-counts, strided layouts -> photo over-retains, etc.).
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.machine.configs import SMALL, MachineConfig
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sim.driver import workload_signature
from repro.threads.runtime import Observer, Runtime
from repro.workloads import (
    MergeParams,
    MergeWorkload,
    PhotoParams,
    PhotoWorkload,
    TasksParams,
    TasksWorkload,
    TspParams,
    TspWorkload,
)
from repro.workloads.randomwalk import RandomWalkWorkload

#: fixture workloads for the cross-check: the five campaign apps at
#: smoke scale, pinned here (not shared with the fault campaign) so the
#: pinned error bounds cannot drift when the campaign rescales
ORACLE_WORKLOADS: Dict[str, Callable] = {
    "randomwalk": lambda: RandomWalkWorkload(total_touches=4096, periods=3),
    "tasks": lambda: TasksWorkload(TasksParams(num_tasks=24, periods=4)),
    "merge": lambda: MergeWorkload(
        MergeParams(num_elements=4000, leaf_cutoff=250)
    ),
    "photo": lambda: PhotoWorkload(PhotoParams(width=128, height=32)),
    "tsp": lambda: TspWorkload(TspParams(num_cities=12, branch_levels=4)),
}

#: pinned per-workload relative-error bounds (the CI gate).  Measured
#: interval-level errors at seed 0: tasks ~0.000 (disjoint footprints,
#: the closed form is near-exact), randomwalk ~0.127, tsp ~0.286,
#: photo ~0.338 (strided rows retain better than the model's uniform
#: eviction assumption), merge ~0.455 (conflict misses between
#: log-structured buffers, which the analytic backend averages away).
#: Bounds carry ~30-40% headroom so seed/scale jitter does not flake
#: the job, while a modelling regression (say, survival maths off by a
#: factor) still lands far outside every bound.
ORACLE_BOUNDS: Dict[str, float] = {
    "randomwalk": 0.20,
    "tasks": 0.05,
    "merge": 0.65,
    "photo": 0.45,
    "tsp": 0.40,
}


class IntervalTape(Observer):
    """Records every scheduling interval's ``(thread name, misses)``.

    Thread *names* rather than tids: dynamically-forking workloads
    (merge, tsp) assign tids in execution order, which may legitimately
    differ across backends when wakeup cycles differ.
    """

    def __init__(self) -> None:
        self.intervals: List[Tuple[str, int]] = []
        self.by_thread: Dict[str, int] = {}

    def on_block(self, cpu, thread, misses: int, finished: bool) -> None:
        self.intervals.append((thread.name, misses))
        self.by_thread[thread.name] = (
            self.by_thread.get(thread.name, 0) + misses
        )


def _run_tape(
    factory: Callable,
    backend: str,
    config: MachineConfig,
    seed: int,
    engine: str,
) -> Tuple[IntervalTape, tuple]:
    """One fixture run: returns the interval tape and the signature."""
    machine = Machine(config, seed=seed, backend=backend)
    runtime = Runtime(
        machine, FCFSScheduler(model_scheduler_memory=False), engine=engine
    )
    tape = IntervalTape()
    runtime.add_observer(tape)
    factory().build(runtime)
    runtime.run()
    return tape, workload_signature(runtime)


def _relative_l1(
    sim: List[int], analytic: List[int]
) -> float:
    """``sum(|a_i - s_i|) / sum(s_i)`` (denominator floored at 1)."""
    total = sum(sim)
    err = sum(abs(a - s) for a, s in zip(analytic, sim))
    return err / max(1, total)


def cross_check(
    name: str,
    factory: Callable,
    config: MachineConfig = SMALL,
    seed: int = 0,
    engine: str = "stepped",
) -> Dict[str, object]:
    """Run one fixture under both backends and compare miss streams."""
    sim_tape, sim_sig = _run_tape(factory, "sim", config, seed, engine)
    ana_tape, ana_sig = _run_tape(factory, "analytic", config, seed, engine)

    aligned = [n for n, _ in sim_tape.intervals] == [
        n for n, _ in ana_tape.intervals
    ]
    if aligned:
        relerr = _relative_l1(
            [m for _, m in sim_tape.intervals],
            [m for _, m in ana_tape.intervals],
        )
    else:
        # wakeup cycles diverged enough to reorder intervals: compare
        # the schedule-independent per-thread totals instead
        names = sorted(set(sim_tape.by_thread) | set(ana_tape.by_thread))
        relerr = _relative_l1(
            [sim_tape.by_thread.get(n, 0) for n in names],
            [ana_tape.by_thread.get(n, 0) for n in names],
        )

    sim_total = sum(m for _, m in sim_tape.intervals)
    ana_total = sum(m for _, m in ana_tape.intervals)
    bound = ORACLE_BOUNDS.get(name)
    return {
        "workload": name,
        "sim_misses": sim_total,
        "analytic_misses": ana_total,
        "total_relerr": abs(ana_total - sim_total) / max(1, sim_total),
        "interval_relerr": relerr,
        "intervals_aligned": aligned,
        "intervals": len(sim_tape.intervals),
        "signature_equal": sim_sig == ana_sig,
        "bound": bound,
        "ok": (bound is None or relerr <= bound) and sim_sig == ana_sig,
    }


def run_oracle(
    workloads: Optional[Dict[str, Callable]] = None,
    config: MachineConfig = SMALL,
    seed: int = 0,
    engine: str = "stepped",
    report_path: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """The full sweep; optionally writes the JSON error-bound report.

    The report (one entry per workload, plus the pinned bounds) is what
    the ``analytic-oracle`` CI job uploads as an artifact, so a bound
    regression comes with the numbers that tripped it.
    """
    workloads = workloads if workloads is not None else ORACLE_WORKLOADS
    results = {
        name: cross_check(name, factory, config=config, seed=seed,
                          engine=engine)
        for name, factory in workloads.items()
    }
    if report_path is not None:
        report = {
            "config": {
                "l2_lines": config.l2_lines,
                "num_cpus": config.num_cpus,
                "seed": seed,
                "engine": engine,
            },
            "bounds": ORACLE_BOUNDS,
            "results": results,
        }
        directory = os.path.dirname(report_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(report_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return results


def format_oracle(results: Dict[str, Dict[str, object]]) -> str:
    """Plain-text summary table (the CI job log)."""
    lines = [
        "analytic-oracle: per-workload miss-count relative error",
        f"{'workload':<12}{'sim':>10}{'analytic':>10}{'relerr':>9}"
        f"{'bound':>8}{'aligned':>9}{'sig':>5}{'ok':>5}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<12}{r['sim_misses']:>10}{r['analytic_misses']:>10}"
            f"{r['interval_relerr']:>9.3f}"
            f"{(r['bound'] if r['bound'] is not None else float('nan')):>8.2f}"
            f"{str(r['intervals_aligned']):>9}"
            f"{str(r['signature_equal'])[:1]:>5}{str(r['ok'])[:1]:>5}"
        )
    return "\n".join(lines)
