"""Exporting experiment data for external plotting and analysis.

The benches print the paper's rows; this module writes the underlying
series as CSV/JSON so the figures can be re-plotted outside the harness
(the repository itself stays plotting-library-free).
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import asdict, is_dataclass
from typing import Dict, Iterable, Mapping, Union

import numpy as np

from repro.sim.metrics import MonitoredResult, PerfResult

PathLike = Union[str, pathlib.Path]


def monitored_to_csv(result: MonitoredResult, path: PathLike) -> None:
    """One row per sample: misses, observed, predicted, instructions."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["misses", "observed", "predicted", "instructions"])
        for i in range(result.misses.size):
            writer.writerow(
                [
                    int(result.misses[i]),
                    int(result.observed[i]),
                    float(result.predicted[i]),
                    int(result.instructions[i]),
                ]
            )


def perf_results_to_csv(
    results: Mapping[str, Mapping[str, PerfResult]], path: PathLike
) -> None:
    """Flatten a {workload: {policy: PerfResult}} table to CSV rows."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "workload",
                "policy",
                "num_cpus",
                "cycles",
                "instructions",
                "l2_misses",
                "l2_refs",
                "context_switches",
                "eliminated_vs_fcfs",
                "speedup_vs_fcfs",
            ]
        )
        for workload, by_policy in results.items():
            base = by_policy.get("fcfs")
            for policy, result in by_policy.items():
                eliminated = (
                    result.misses_eliminated_vs(base) if base else float("nan")
                )
                speedup = result.speedup_vs(base) if base else float("nan")
                writer.writerow(
                    [
                        workload,
                        policy,
                        result.num_cpus,
                        result.cycles,
                        result.instructions,
                        result.l2_misses,
                        result.l2_refs,
                        result.context_switches,
                        f"{eliminated:.6f}",
                        f"{speedup:.6f}",
                    ]
                )


def curves_to_csv(
    curves: Mapping[str, Iterable], path: PathLike
) -> None:
    """Export labelled (x, y) curves (e.g. Figure 4 panels) long-form."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "x", "observed", "predicted"])
        for label, curve in curves.items():
            for i in range(curve.misses.size):
                writer.writerow(
                    [
                        label,
                        int(curve.misses[i]),
                        int(curve.observed[i]),
                        float(curve.predicted[i]),
                    ]
                )


class _Encoder(json.JSONEncoder):
    """JSON encoder handling numpy scalars/arrays and dataclasses."""

    def default(self, obj):
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if is_dataclass(obj) and not isinstance(obj, type):
            return asdict(obj)
        return super().default(obj)


def to_json(data, path: PathLike) -> None:
    """Write any experiment result structure as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(data, cls=_Encoder, indent=2, sort_keys=True))


def load_json(path: PathLike):
    """Round-trip companion of :func:`to_json`."""
    return json.loads(pathlib.Path(path).read_text())
