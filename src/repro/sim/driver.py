"""Experiment drivers: performance runs and monitored-footprint runs.

``run_performance`` reproduces the section 5 methodology: build the
workload, run it to completion under a policy, report cycles/misses.

``run_monitored`` reproduces the section 3.3 methodology: "We have
measured the footprint sizes of the 'work' threads in each application
after the initialization stage completed.  The 'work' threads are blocked
during the computation stage and their state is flushed from the cache.
After threads resume, their footprints are monitored by our cache
simulator ...  we monitor the uninterrupted execution of a single 'work'
thread on an UltraSPARC-1 processor."
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.model import SharedStateModel
from repro.machine.configs import ULTRA1, MachineConfig
from repro.machine.smp import Machine
from repro.sched.base import Scheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sim.metrics import MonitoredResult, PerfResult
from repro.sim.tracer import FootprintTracer
from repro.threads.runtime import Observer, Runtime
from repro.workloads.base import MonitoredApp, Workload


def run_performance(
    workload: Workload,
    config: MachineConfig,
    scheduler: Scheduler,
    seed: int = 0,
    max_events: Optional[int] = None,
) -> PerfResult:
    """Run a workload to completion; returns the aggregate counters."""
    machine = Machine(config, seed=seed)
    runtime = Runtime(machine, scheduler)
    workload.build(runtime)
    runtime.run(max_events=max_events)
    steals = getattr(scheduler, "steals", 0)
    return PerfResult(
        workload=workload.name,
        scheduler=scheduler.name,
        num_cpus=config.num_cpus,
        cycles=machine.time(),
        instructions=machine.total_instructions(),
        l2_misses=machine.total_l2_misses(),
        l2_refs=sum(cpu.l2.stats.refs for cpu in machine.cpus),
        context_switches=runtime.context_switches,
        steals=steals,
    )


class _WorkThreadSampler(Observer):
    """Records (misses, observed footprint, instructions) after every
    touch of the watched thread."""

    def __init__(self, machine: Machine, tracer: FootprintTracer, cpu: int = 0):
        self.machine = machine
        self.tracer = tracer
        self.cpu = cpu
        self.watch_tid: Optional[int] = None
        self.miss_base = 0
        self.instr_base = 0
        self.misses: List[int] = []
        self.observed: List[int] = []
        self.instructions: List[int] = []

    def arm(self, tid: int) -> None:
        """Start sampling for ``tid``, zeroing the counters at this point
        (the paper measures from the work thread's resume)."""
        self.watch_tid = tid
        self.miss_base = self.machine.cpus[self.cpu].l2.stats.misses
        self.instr_base = self.machine.cpus[self.cpu].instructions

    def on_touch(self, cpu: int, thread, result) -> None:
        if thread.tid != self.watch_tid or cpu != self.cpu:
            return
        cpu_obj = self.machine.cpus[self.cpu]
        self.misses.append(cpu_obj.l2.stats.misses - self.miss_base)
        self.observed.append(self.tracer.observed(self.cpu, thread.tid))
        self.instructions.append(cpu_obj.instructions - self.instr_base)


def run_monitored(
    app: MonitoredApp,
    config: MachineConfig = ULTRA1,
    seed: int = 0,
) -> MonitoredResult:
    """Trace one work thread's footprint against the model's prediction."""
    machine = Machine(config, seed=seed)
    # The accuracy runs are about the model, not the policy: a bare FCFS
    # with no simulated scheduler memory keeps the cache unpolluted.
    runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
    tracer = FootprintTracer(machine)
    sampler = _WorkThreadSampler(machine, tracer)
    runtime.add_observer(tracer)
    runtime.add_observer(sampler)

    app.setup(runtime)
    init = app.init_body()
    if init is not None:
        runtime.at_create(init, name=f"{app.name}-init")
        runtime.run()

    # "their state is flushed from the cache" before monitoring resumes.
    machine.flush_all()

    work_tid = runtime.at_create(app.work_body(), name=f"{app.name}-work")
    runtime.declare_state(work_tid, app.state_regions())
    sampler.arm(work_tid)
    runtime.run()

    misses = np.asarray(sampler.misses, dtype=np.int64)
    observed = np.asarray(sampler.observed, dtype=np.int64)
    instructions = np.asarray(sampler.instructions, dtype=np.int64)
    model = SharedStateModel(config.l2_lines)
    predicted = np.asarray(model.expected_running(0.0, misses), dtype=float)
    return MonitoredResult(
        app=app.name,
        language=app.language,
        cache_lines=config.l2_lines,
        misses=misses,
        observed=observed,
        predicted=predicted,
        instructions=instructions,
    )
