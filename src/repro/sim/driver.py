"""Experiment drivers: performance, monitored-footprint, and hardened runs.

``run_performance`` reproduces the section 5 methodology: build the
workload, run it to completion under a policy, report cycles/misses.

``run_monitored`` reproduces the section 3.3 methodology: "We have
measured the footprint sizes of the 'work' threads in each application
after the initialization stage completed.  The 'work' threads are blocked
during the computation stage and their state is flushed from the cache.
After threads resume, their footprints are monitored by our cache
simulator ...  we monitor the uninterrupted execution of a single 'work'
thread on an UltraSPARC-1 processor."

``run_hardened`` is the production-minded variant behind the fault
campaign (see :mod:`repro.faults`): the run executes under a
:class:`Watchdog` that enforces step budgets, checkpoints partial
results at every budget boundary, detects livelock and starvation, and
answers injected crashes with retry-with-reseed.  A hung or crashed run
therefore ends in a typed diagnostic
(:class:`~repro.threads.errors.WatchdogTimeout`) carrying the checkpoint
history instead of spinning forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import SharedStateModel
from repro.machine.configs import ULTRA1, MachineConfig
from repro.machine.smp import Machine
from repro.sched.base import Scheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sim.metrics import MonitoredResult, PerfResult
from repro.sim.tracer import FootprintTracer
from repro.threads.errors import StepBudgetExceeded, WatchdogTimeout
from repro.threads.runtime import Observer, Runtime
from repro.workloads.base import MonitoredApp, Workload


def run_performance(
    workload: Workload,
    config: MachineConfig,
    scheduler: Scheduler,
    seed: int = 0,
    max_events: Optional[int] = None,
    engine: str = "stepped",
    backend: str = "sim",
) -> PerfResult:
    """Run a workload to completion; returns the aggregate counters.

    ``engine`` selects the scheduling loop (``"stepped"`` or ``"event"``;
    see docs/MODEL.md "The event engine") -- the counters are
    bit-identical either way, only wall-clock time differs.

    ``backend`` selects how touch batches are priced: ``"sim"`` replays
    every reference through the cache hierarchy, ``"analytic"`` predicts
    miss counts from reuse distances via the closed-form model
    (docs/MODEL.md "The analytic backend") -- per-thread ground truth
    (refs, instructions) is identical, miss counts are approximate
    within the bounds the ``analytic-oracle`` CI job pins.
    """
    machine = Machine(config, seed=seed, backend=backend)
    runtime = Runtime(machine, scheduler, engine=engine)
    workload.build(runtime)
    runtime.run(max_events=max_events)
    steals = getattr(scheduler, "steals", 0)
    return PerfResult(
        workload=workload.name,
        scheduler=scheduler.name,
        num_cpus=config.num_cpus,
        cycles=machine.time(),
        instructions=machine.total_instructions(),
        l2_misses=machine.total_l2_misses(),
        l2_refs=sum(cpu.l2.stats.refs for cpu in machine.cpus),
        context_switches=runtime.context_switches,
        steals=steals,
    )


class _WorkThreadSampler(Observer):
    """Records (misses, observed footprint, instructions) after every
    touch of the watched thread."""

    def __init__(self, machine: Machine, tracer, cpu: int = 0):
        # ``tracer`` is anything with ``observed(cpu, tid) -> int``:
        # FootprintTracer (sim) or _AnalyticFootprintProbe (analytic).
        self.machine = machine
        self.tracer = tracer
        self.cpu = cpu
        self.watch_tid: Optional[int] = None
        self.miss_base = 0
        self.instr_base = 0
        self.misses: List[int] = []
        self.observed: List[int] = []
        self.instructions: List[int] = []

    def arm(self, tid: int) -> None:
        """Start sampling for ``tid``, zeroing the counters at this point
        (the paper measures from the work thread's resume)."""
        self.watch_tid = tid
        self.miss_base = self.machine.cpus[self.cpu].l2.stats.misses
        self.instr_base = self.machine.cpus[self.cpu].instructions

    def on_touch(self, cpu: int, thread, result) -> None:
        if thread.tid != self.watch_tid or cpu != self.cpu:
            return
        cpu_obj = self.machine.cpus[self.cpu]
        self.misses.append(cpu_obj.l2.stats.misses - self.miss_base)
        self.observed.append(self.tracer.observed(self.cpu, thread.tid))
        self.instructions.append(cpu_obj.instructions - self.instr_base)


class _AnalyticFootprintProbe(Observer):
    """The analytic backend's stand-in for the footprint tracer.

    The analytic cache has no notion of which lines are resident, so
    there are no install/evict events for :class:`FootprintTracer` to
    consume.  What it *does* know is each line's survival probability,
    so the "observed" footprint of a thread becomes the expected
    resident count of its declared state lines -- the same quantity the
    closed-form model predicts, computed from per-line reuse distances
    instead of the aggregate miss count.
    """

    def __init__(self, machine: Machine, cpu: int = 0) -> None:
        self._machine = machine
        self._cpu = cpu
        self._state: Dict[int, np.ndarray] = {}

    def on_state_declared(self, tid: int, vlines: np.ndarray) -> None:
        existing = self._state.get(tid)
        if existing is None:
            self._state[tid] = vlines
        else:
            self._state[tid] = np.unique(
                np.concatenate([existing, vlines])
            )

    def observed(self, cpu: int, tid: int) -> int:
        """Duck-typed :meth:`FootprintTracer.observed` replacement."""
        vlines = self._state.get(tid)
        if vlines is None:
            return 0
        hierarchy = self._machine.cpus[cpu].hierarchy
        return int(round(hierarchy.expected_resident(vlines)))


def run_monitored(
    app: MonitoredApp,
    config: MachineConfig = ULTRA1,
    seed: int = 0,
    engine: str = "stepped",
    backend: str = "sim",
) -> MonitoredResult:
    """Trace one work thread's footprint against the model's prediction.

    With ``backend="analytic"`` the observed curve comes from the
    analytic cache's expected-resident estimate (there are no per-line
    install/evict events to trace), so the comparison becomes
    reuse-distance model vs aggregate closed form rather than
    ground-truth simulation vs model -- useful for sweep-scale sanity,
    not for accuracy claims.
    """
    machine = Machine(config, seed=seed, backend=backend)
    # The accuracy runs are about the model, not the policy: a bare FCFS
    # with no simulated scheduler memory keeps the cache unpolluted.
    runtime = Runtime(
        machine, FCFSScheduler(model_scheduler_memory=False), engine=engine
    )
    if backend == "analytic":
        tracer = _AnalyticFootprintProbe(machine)
    else:
        tracer = FootprintTracer(machine)
    sampler = _WorkThreadSampler(machine, tracer)
    runtime.add_observer(tracer)
    runtime.add_observer(sampler)

    app.setup(runtime)
    init = app.init_body()
    if init is not None:
        runtime.at_create(init, name=f"{app.name}-init")
        runtime.run()

    # "their state is flushed from the cache" before monitoring resumes.
    machine.flush_all()

    work_tid = runtime.at_create(app.work_body(), name=f"{app.name}-work")
    runtime.declare_state(work_tid, app.state_regions())
    sampler.arm(work_tid)
    runtime.run()

    misses = np.asarray(sampler.misses, dtype=np.int64)
    observed = np.asarray(sampler.observed, dtype=np.int64)
    instructions = np.asarray(sampler.instructions, dtype=np.int64)
    model = SharedStateModel(config.l2_lines)
    predicted = np.asarray(model.expected_running(0.0, misses), dtype=float)
    return MonitoredResult(
        app=app.name,
        language=app.language,
        cache_lines=config.l2_lines,
        misses=misses,
        observed=observed,
        predicted=predicted,
        instructions=instructions,
    )


# -- hardened runs: watchdog, checkpoints, retry-with-reseed ------------------


Signature = Tuple[Tuple[str, int, int, str], ...]


def workload_signature(runtime: Runtime) -> Signature:
    """The correctness signature of a run: per-thread ground truth.

    A sorted tuple of ``(name, refs, instructions, state)``.  References
    and instructions count what the thread's *program* did, independent
    of where or when it was scheduled, so two runs of the same workload
    must produce identical signatures no matter how the hints were
    corrupted.  Injected delays stall the cpu clock without charging the
    thread, and so also leave the signature untouched.

    Sorted by (schedule-invariant) thread name rather than keyed by tid:
    workloads that create threads dynamically (merge, tsp) assign tids
    in execution order, which a scheduling perturbation legitimately
    changes without changing any thread's results.
    """
    return tuple(
        sorted(
            (t.name, t.stats.refs, t.stats.instructions, t.state.value)
            for t in runtime.threads.values()
        )
    )


@dataclass(frozen=True)
class Checkpoint:
    """A progress snapshot taken at a step-budget boundary."""

    events: int
    cycles: int
    done: int  # threads finished
    live: int  # threads still alive
    thread_instructions: int  # ground-truth work completed so far
    thread_refs: int
    #: simulated time at the checkpoint (diagnostic: shows legitimate
    #: event-driven time jumps across otherwise-quiet chunks)
    sim_time: int = 0
    #: THREAD_WAKEUP timers that actually woke a thread so far
    wakeups: int = 0

    @property
    def progress(self) -> Tuple[int, int, int, int]:
        """The forward-progress tuple the stall detector compares.

        Events and cycles always grow (a livelocked thread still spins),
        so progress is measured by completed threads, by ground-truth
        program work, and by *event-time* progress -- delivered timer
        wakeups.  A phase of long sleeps legitimately executes whole
        chunks of Sleep/wake events without adding an instruction or a
        reference; its wakeups mark it as forward motion rather than a
        stall.  A Yield-spin livelock mints no wakeups and advances
        nothing else, so it still trips the detector.
        """
        return (
            self.done,
            self.thread_instructions,
            self.thread_refs,
            self.wakeups,
        )


class Watchdog:
    """Supervises a runtime with a step budget and a stall detector.

    ``supervise`` drives ``runtime.run`` in chunks of ``step_budget``
    events, checkpointing at every boundary.  If the progress tuple is
    unchanged for ``stall_chunks`` consecutive chunks, or the total
    ``max_chunks`` budget is exhausted, the run is declared hung and a
    :class:`WatchdogTimeout` carrying the checkpoint history and the
    partial result signature is raised -- an injected livelock becomes a
    diagnostic instead of an infinite loop.  Optionally, READY threads
    left undispatched for more than ``starvation_cycles`` also trip the
    watchdog (off by default: FCFS-bound workloads legitimately queue).
    """

    def __init__(
        self,
        step_budget: int = 200_000,
        max_chunks: int = 64,
        stall_chunks: int = 2,
        starvation_cycles: Optional[int] = None,
    ) -> None:
        self.step_budget = step_budget
        self.max_chunks = max_chunks
        self.stall_chunks = stall_chunks
        self.starvation_cycles = starvation_cycles
        self.checkpoints: List[Checkpoint] = []

    def _checkpoint(self, runtime: Runtime) -> Checkpoint:
        done = live = instructions = refs = 0
        for t in runtime.threads.values():
            if t.alive:
                live += 1
            else:
                done += 1
            instructions += t.stats.instructions
            refs += t.stats.refs
        cp = Checkpoint(
            events=runtime.events_executed,
            cycles=runtime.machine.time(),
            done=done,
            live=live,
            thread_instructions=instructions,
            thread_refs=refs,
            sim_time=runtime.machine.time(),
            wakeups=runtime.timer_wakeups,
        )
        self.checkpoints.append(cp)
        return cp

    def _stalled_threads(self, runtime: Runtime) -> List:
        """Live threads that contributed nothing across the stall window
        (best-effort naming for the diagnostic; livelocked threads are
        flagged directly)."""
        return [
            t
            for t in runtime.threads.values()
            if t.alive and (t.fault_livelocked or t.state.value == "blocked")
        ]

    def _starved_threads(self, runtime: Runtime) -> List:
        if self.starvation_cycles is None:
            return []
        now = runtime.machine.time()
        return [
            t
            for t in runtime.threads.values()
            if t.ready_at is not None
            and now - t.ready_at > self.starvation_cycles
        ]

    def _timeout(self, runtime: Runtime, reason: str) -> WatchdogTimeout:
        stalled = self._stalled_threads(runtime)
        detail = ""
        if stalled:
            detail = "; stalled: " + ", ".join(t.name for t in stalled)
        return WatchdogTimeout(
            f"watchdog: {reason} after {runtime.events_executed} events"
            f"{detail}",
            checkpoints=[vars(cp) for cp in self.checkpoints],
            partial=workload_signature(runtime),
            stalled=stalled,
        )

    def supervise(self, runtime: Runtime) -> None:
        """Run ``runtime`` to completion or raise :class:`WatchdogTimeout`.

        May also propagate whatever the workload itself raises (including
        an :class:`~repro.faults.injector.InjectedCrash` from the fault
        injector, handled one level up by :func:`run_hardened`).
        """
        stalled_for = 0
        last_progress: Optional[Tuple[int, int, int, int]] = None
        for chunk in range(1, self.max_chunks + 1):
            try:
                runtime.run(max_events=chunk * self.step_budget)
            except StepBudgetExceeded:
                cp = self._checkpoint(runtime)
                if cp.progress == last_progress:
                    stalled_for += 1
                    if stalled_for >= self.stall_chunks:
                        raise self._timeout(
                            runtime,
                            f"no forward progress across "
                            f"{stalled_for * self.step_budget} events",
                        ) from None
                else:
                    stalled_for = 0
                    last_progress = cp.progress
                starved = self._starved_threads(runtime)
                if starved:
                    names = ", ".join(t.name for t in starved)
                    raise self._timeout(
                        runtime, f"starvation: {names} ready too long"
                    ) from None
            else:
                self._checkpoint(runtime)
                return
        raise self._timeout(
            runtime,
            f"step budget exhausted ({self.max_chunks * self.step_budget} "
            f"events)",
        )


@dataclass
class HardenedResult:
    """Outcome of :func:`run_hardened`."""

    perf: PerfResult
    #: per-thread correctness signature (see :func:`workload_signature`)
    signature: Signature
    #: 1 on a clean first run; >1 means retries-with-reseed happened
    attempts: int
    #: watchdog checkpoints of the successful attempt
    checkpoints: List[Checkpoint] = field(default_factory=list)
    #: injection tallies from the injector (empty dict when no plan)
    injections: Dict = field(default_factory=dict)
    #: light/deep invariant check counts (empty when checking disabled)
    invariant_checks: Dict = field(default_factory=dict)
    #: True if the final attempt ran with thread faults stripped
    safe_mode: bool = False


def run_hardened(
    workload_factory: Callable[[], Workload],
    config: MachineConfig,
    scheduler_factory: Callable[[], Scheduler],
    plan=None,
    seed: int = 0,
    watchdog: Optional[Watchdog] = None,
    max_attempts: int = 3,
    invariants: bool = True,
    engine: str = "stepped",
) -> HardenedResult:
    """Run a workload under fault injection with full hardening.

    Builds a fresh machine/scheduler/runtime/workload per attempt (the
    factories make each retry hermetic), injects faults per ``plan`` (a
    :class:`~repro.faults.plan.FaultPlan`, or ``None`` for a fault-free
    reference run), supervises with a :class:`Watchdog`, and validates
    invariants every step.  An :class:`InjectedCrash` triggers
    retry-with-reseed; if crashes persist, the final attempt strips
    thread faults from the plan (``safe_mode``) so hint faults are still
    exercised while the run is guaranteed crash-free.  A hung run raises
    :class:`WatchdogTimeout`; everything else returns a
    :class:`HardenedResult`.
    """
    # Imported lazily: repro.faults depends on this module for the
    # campaign, so a module-level import here would be circular.
    from repro.faults.injector import FaultInjector, InjectedCrash
    from repro.faults.invariants import InvariantChecker

    last_crash: Optional[Exception] = None
    for attempt in range(1, max_attempts + 1):
        attempt_plan = plan
        safe_mode = False
        if plan is not None and attempt > 1:
            if attempt == max_attempts and plan.thread is not None:
                attempt_plan = plan.without_thread_faults().reseed(attempt)
                safe_mode = True
            else:
                attempt_plan = plan.reseed(attempt)
        injector = (
            FaultInjector(attempt_plan) if attempt_plan is not None else None
        )
        machine = Machine(config, seed=seed)
        scheduler = scheduler_factory()
        runtime = Runtime(machine, scheduler, injector=injector, engine=engine)
        checker: Optional[InvariantChecker] = None
        if invariants:
            checker = InvariantChecker(runtime)
            runtime.add_observer(checker)
        workload = workload_factory()
        workload.build(runtime)
        dog = watchdog if watchdog is not None else Watchdog()
        dog.checkpoints = []
        try:
            dog.supervise(runtime)
        except InjectedCrash as crash:
            last_crash = crash
            continue
        if checker is not None:
            checker.deep_check()  # final sweep at quiescence
        perf = PerfResult(
            workload=workload.name,
            scheduler=scheduler.name,
            num_cpus=config.num_cpus,
            cycles=machine.time(),
            instructions=machine.total_instructions(),
            l2_misses=machine.total_l2_misses(),
            l2_refs=sum(cpu.l2.stats.refs for cpu in machine.cpus),
            context_switches=runtime.context_switches,
            steals=getattr(scheduler, "steals", 0),
        )
        return HardenedResult(
            perf=perf,
            signature=workload_signature(runtime),
            attempts=attempt,
            checkpoints=list(dog.checkpoints),
            injections=injector.summary() if injector is not None else {},
            invariant_checks=(
                {"light": checker.checks, "deep": checker.deep_checks}
                if checker is not None
                else {}
            ),
            safe_mode=safe_mode,
        )
    raise WatchdogTimeout(
        f"crashed on all {max_attempts} attempts: {last_crash}",
    )
