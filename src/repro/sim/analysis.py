"""Post-run analysis: where the cycles and misses went.

Turns a finished (machine, runtime) pair into the summaries a performance
study needs: per-thread behaviour, per-cpu balance, the local/remote miss
split the Enterprise 5000 pricing creates, and an estimate of how much of
the clock the scheduling machinery itself consumed (the overhead the
paper insists "must be less than the avoided cache reload penalty").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.machine.counters import READ_COST_INSTRUCTIONS
from repro.machine.smp import Machine
from repro.sim.report import format_table
from repro.threads.runtime import Runtime


@dataclass(frozen=True)
class ThreadSummary:
    """One thread's lifetime in numbers."""

    tid: int
    name: str
    intervals: int
    refs: int
    misses: int
    migrations: int
    wait_cycles: int
    max_wait_cycles: int

    @property
    def miss_rate(self) -> float:
        """Fraction of the thread's references that missed."""
        return self.misses / self.refs if self.refs else 0.0


def thread_summaries(runtime: Runtime) -> List[ThreadSummary]:
    """Per-thread accounting, ordered by tid."""
    out = []
    for tid in sorted(runtime.threads):
        thread = runtime.threads[tid]
        s = thread.stats
        out.append(
            ThreadSummary(
                tid=tid,
                name=thread.name,
                intervals=s.intervals,
                refs=s.refs,
                misses=s.misses,
                migrations=s.migrations,
                wait_cycles=s.wait_cycles,
                max_wait_cycles=s.max_wait_cycles,
            )
        )
    return out


@dataclass(frozen=True)
class CpuSummary:
    """One processor's totals."""

    cpu: int
    cycles: int
    instructions: int
    refs: int
    misses: int
    remote_misses: int
    invalidations: int

    @property
    def local_misses(self) -> int:
        """Misses priced at the local cost."""
        return self.misses - self.remote_misses


def cpu_summaries(machine: Machine) -> List[CpuSummary]:
    """Per-cpu accounting."""
    out = []
    for cpu in machine.cpus:
        stats = cpu.l2.stats
        out.append(
            CpuSummary(
                cpu=cpu.cpu_id,
                cycles=cpu.cycles,
                instructions=cpu.instructions,
                refs=stats.refs,
                misses=stats.misses,
                remote_misses=cpu.remote_misses,
                invalidations=stats.invalidations,
            )
        )
    return out


def load_imbalance(machine: Machine) -> float:
    """Max/mean cpu cycle ratio (1.0 = perfectly balanced)."""
    cycles = np.asarray([cpu.cycles for cpu in machine.cpus], dtype=float)
    mean = cycles.mean()
    return float(cycles.max() / mean) if mean else 1.0


def remote_miss_fraction(machine: Machine) -> float:
    """Share of all E-cache misses that hit another cpu's copy."""
    total = machine.total_l2_misses()
    remote = sum(cpu.remote_misses for cpu in machine.cpus)
    return remote / total if total else 0.0


def scheduler_overhead_cycles(runtime: Runtime) -> int:
    """Lower-bound estimate of cycles spent on scheduling machinery.

    Counts the per-switch fixed costs the runtime charges (base context
    switch + counter read); policy-specific costs (heap operations,
    priority FP ops, queue manipulation) come on top and are included in
    the clock but not separable after the fact.
    """
    per_switch = (
        runtime.machine.config.context_switch_instructions
        + READ_COST_INSTRUCTIONS
    )
    return runtime.context_switches * per_switch


def overhead_fraction(runtime: Runtime) -> float:
    """Scheduler overhead as a fraction of total machine cycles."""
    total = sum(cpu.cycles for cpu in runtime.machine.cpus)
    return scheduler_overhead_cycles(runtime) / total if total else 0.0


def run_report(machine: Machine, runtime: Runtime, top: int = 8) -> str:
    """A human-readable post-mortem of one run."""
    cpu_rows = [
        (
            c.cpu,
            c.cycles,
            c.instructions,
            c.misses,
            c.remote_misses,
            c.invalidations,
        )
        for c in cpu_summaries(machine)
    ]
    cpu_table = format_table(
        ["cpu", "cycles", "instructions", "misses", "remote", "invalidations"],
        cpu_rows,
        title="Per-cpu totals",
    )
    threads = thread_summaries(runtime)
    worst = sorted(threads, key=lambda t: t.misses, reverse=True)[:top]
    thread_rows = [
        (t.name, t.intervals, t.refs, t.misses,
         f"{100 * t.miss_rate:.1f}%", t.migrations, t.max_wait_cycles)
        for t in worst
    ]
    thread_table = format_table(
        ["thread", "intervals", "refs", "misses", "miss rate", "migrations",
         "max wait"],
        thread_rows,
        title=f"Heaviest {len(worst)} threads by misses",
    )
    summary = format_table(
        ["metric", "value"],
        [
            ("machine time [cycles]", machine.time()),
            ("total E-misses", machine.total_l2_misses()),
            ("remote miss fraction", f"{100 * remote_miss_fraction(machine):.1f}%"),
            ("load imbalance (max/mean)", f"{load_imbalance(machine):.3f}"),
            ("context switches", runtime.context_switches),
            ("switch overhead fraction",
             f"{100 * overhead_fraction(runtime):.2f}%"),
        ],
        title="Run summary",
    )
    return "\n\n".join([summary, cpu_table, thread_table])
