"""Result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class PerfResult:
    """Outcome of one performance run (one workload under one policy)."""

    workload: str
    scheduler: str
    num_cpus: int
    cycles: int
    instructions: int
    l2_misses: int
    l2_refs: int
    context_switches: int
    steals: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mpi(self) -> float:
        """E-cache misses per instruction."""
        return self.l2_misses / max(1, self.instructions)

    def misses_eliminated_vs(self, base: "PerfResult") -> float:
        """Fraction of the baseline's E-cache misses this run avoided
        (the paper's "E-misses eliminated %"); negative means more."""
        if base.l2_misses == 0:
            return 0.0
        return 1.0 - self.l2_misses / base.l2_misses

    def speedup_vs(self, base: "PerfResult") -> float:
        """Relative performance vs the baseline (>1 means faster)."""
        return base.cycles / max(1, self.cycles)


@dataclass
class MonitoredResult:
    """Footprint trace of one monitored work thread (Figures 5-7)."""

    app: str
    language: str
    cache_lines: int
    #: cumulative work-phase miss count at each sample
    misses: np.ndarray
    #: observed footprint (tracer ground truth) at each sample
    observed: np.ndarray
    #: model prediction E[F] = N * (1 - k**n) at each sample
    predicted: np.ndarray
    #: cumulative work-phase instructions at each sample
    instructions: np.ndarray

    @property
    def mean_absolute_error(self) -> float:
        """Mean |predicted - observed| in lines over the trace."""
        if self.misses.size == 0:
            return 0.0
        return float(np.mean(np.abs(self.predicted - self.observed)))

    @property
    def final_ratio(self) -> float:
        """predicted / observed at the end of the trace (>1 means the
        model overestimates, the Figure 7 signature)."""
        if self.observed.size == 0 or self.observed[-1] == 0:
            return float("inf")
        return float(self.predicted[-1] / self.observed[-1])

    @property
    def overestimation(self) -> float:
        """Mean signed (predicted - observed) in lines."""
        if self.misses.size == 0:
            return 0.0
        return float(np.mean(self.predicted - self.observed))


def mpi_series(
    instructions: np.ndarray, misses: np.ndarray, window: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed misses-per-1000-instructions over a trace (Figure 6).

    Returns (instruction positions, MPI values); each value covers the
    preceding ``window`` samples.
    """
    if instructions.size <= window:
        return np.empty(0), np.empty(0)
    d_instr = instructions[window:] - instructions[:-window]
    d_miss = misses[window:] - misses[:-window]
    with np.errstate(divide="ignore", invalid="ignore"):
        mpi = np.where(d_instr > 0, 1000.0 * d_miss / np.maximum(d_instr, 1), 0.0)
    return instructions[window:], mpi
