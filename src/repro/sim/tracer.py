"""Observed per-thread footprints, maintained from cache install/evict
events.

A thread's *observed* footprint in a processor's cache is the number of
resident lines belonging to the thread's declared state (the projection of
its working set onto the cache -- Thiebaut & Stone's definition the paper
adopts).  The tracer:

- learns state membership from ``Runtime.declare_state`` (virtual lines),
- subscribes to every cpu's E-cache install/evict/invalidate stream
  (physical lines, translated back through the VM reverse map),
- keeps per-(cpu, thread) resident counts incrementally, so sampling is
  O(1) at any moment.

Lines shared by several threads count toward each of their footprints,
exactly as in the paper's shared-state setting.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.machine.smp import Machine
from repro.threads.runtime import Observer


class FootprintTracer(Observer):
    """Ground-truth footprint observation (measurement only)."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._vm = machine.vm
        # virtual line -> tids whose state contains it
        self._state: Dict[int, Tuple[int, ...]] = {}
        # per cpu: tid -> resident line count
        self._counts: List[Dict[int, int]] = [
            {} for _ in machine.cpus
        ]
        # per cpu: resident physical lines we have attributed (guards
        # against double counting when a line is re-installed)
        self._attributed: List[Set[int]] = [set() for _ in machine.cpus]
        for cpu_id, cpu in enumerate(machine.cpus):
            cpu.l2.on_install(self._make_listener(cpu_id, installed=True))
            cpu.l2.on_evict(self._make_listener(cpu_id, installed=False))

    # -- state declaration -----------------------------------------------------

    def on_state_declared(self, tid: int, vlines: np.ndarray) -> None:
        state = self._state
        for vline in vlines.tolist():
            existing = state.get(vline)
            if existing is None:
                state[vline] = (tid,)
            elif tid not in existing:
                state[vline] = existing + (tid,)

    # -- cache event plumbing -----------------------------------------------------

    def _make_listener(self, cpu_id: int, installed: bool):
        def listener(plines: np.ndarray) -> None:
            self._apply(cpu_id, plines, installed)

        return listener

    def _apply(self, cpu_id: int, plines: np.ndarray, installed: bool) -> None:
        counts = self._counts[cpu_id]
        attributed = self._attributed[cpu_id]
        reverse = self._vm.reverse_line
        state = self._state
        delta = 1 if installed else -1
        for pline in plines.tolist():
            if installed:
                if pline in attributed:
                    continue  # already counted (shouldn't normally happen)
            else:
                if pline not in attributed:
                    continue  # evicting a line we never attributed
            vline = reverse(pline)
            owners = state.get(vline) if vline is not None else None
            if installed:
                attributed.add(pline)
            else:
                attributed.discard(pline)
            if not owners:
                continue
            for tid in owners:
                counts[tid] = counts.get(tid, 0) + delta

    # -- queries ------------------------------------------------------------------

    def observed(self, cpu: int, tid: int) -> int:
        """Current observed footprint of ``tid`` in ``cpu``'s E-cache."""
        return self._counts[cpu].get(tid, 0)

    def observed_all(self, cpu: int) -> Dict[int, int]:
        """All non-zero observed footprints on one cpu."""
        return {tid: c for tid, c in self._counts[cpu].items() if c > 0}

    def check_consistency(self, cpu: int) -> bool:
        """Recompute footprints from the cache contents and compare with
        the incremental counts (used by the test suite)."""
        recount: Dict[int, int] = {}
        for pline in self.machine.cpus[cpu].l2.resident_lines().tolist():
            vline = self._vm.reverse_line(pline)
            for tid in self._state.get(vline, ()):
                recount[tid] = recount.get(tid, 0) + 1
        current = {t: c for t, c in self._counts[cpu].items() if c != 0}
        return recount == current


def event_timeline(runtime) -> List[Tuple[int, int, int, str]]:
    """The run's fired-event timeline as ``(time, seq, tid, kind)`` rows.

    Reads the event queue's audit log (``enable_log()`` must have been
    called before the run; see
    :func:`repro.sim.trace.record_workload_trace`).  The rows are in
    firing order and -- because both engines share one
    :class:`~repro.sim.events.EventQueue` with the deterministic
    ``(time, seq, tid)`` ordering -- identical between ``--engine
    stepped`` and ``--engine event``.
    """
    log = runtime.event_queue.log
    if log is None:
        raise ValueError(
            "event logging was not enabled; call "
            "runtime.event_queue.enable_log() before the run"
        )
    return [(e.time, e.seq, e.tid, e.kind.name) for e in log]
