"""Simulation driver, per-thread footprint tracing, and metrics.

This package plays the role of the paper's Shade-based measurement
apparatus (section 3): it observes what the hardware counters cannot --
"the information about the association between cache lines and threads is
lost.  Hardware simulations that preserve such association are
necessary."  The tracer is measurement-only; schedulers never see it.
"""

from repro.sim.analysis import run_report, thread_summaries, cpu_summaries
from repro.sim.driver import run_monitored, run_performance
from repro.sim.export import monitored_to_csv, perf_results_to_csv, to_json
from repro.sim.metrics import MonitoredResult, PerfResult, mpi_series
from repro.sim.report import format_table
from repro.sim.tracer import FootprintTracer

__all__ = [
    "FootprintTracer",
    "cpu_summaries",
    "run_report",
    "thread_summaries",
    "monitored_to_csv",
    "perf_results_to_csv",
    "to_json",
    "MonitoredResult",
    "PerfResult",
    "format_table",
    "mpi_series",
    "run_monitored",
    "run_performance",
]
