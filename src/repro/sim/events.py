"""The event-driven simulation engine: event queue + scheduler loop.

The quantum-stepped loop in :meth:`repro.threads.runtime.Runtime.run`
gives every cpu an iteration whenever its clock is the global minimum --
including cpus with nothing to run, which burn a full failed
``scheduler.pick()`` (stale-entry drains, steal scans) per busy-thread
event just to jump their clocks forward.  On sparse workloads (most
threads sleeping or blocked) that idle churn is O(cpus^2) Python work per
executed event and dominates wall time.

This module provides the event-driven replacement:

- :class:`EventKind` / :class:`Event` / :class:`EventQueue` -- a
  deterministic heap-ordered event queue shared by *both* engines.  Sleep
  timers, periodic realtime wakeups, scheduler ticks and quantum expiries
  all live here; ties are broken by ``(time, seq, tid)`` where ``seq`` is
  the queue-assigned schedule order, so replay is exact and pop order is
  a pure function of the schedule calls, never of heap insertion layout.
- :class:`EventEngine` -- the event-driven scheduler loop, selected with
  ``Runtime(engine="event")`` (CLI: ``--engine event``).  It advances
  simulated time to the next event: an idle cpu is *parked* after one
  faithful failed pick, and every subsequent failed-pick iteration the
  stepped loop would have executed for it is replayed as O(1) arithmetic
  (a "virtual step") instead of a full scheduler call.

Bit-identical parity
--------------------

The engine is an action-for-action replica of the stepped loop, not an
approximation.  A parked cpu's virtual step reproduces exactly what the
stepped loop's iteration would have done, which is possible because a
failed ``pick()`` in the *idle-quiescent* state (no READY threads, the
picking cpu's own structures drained) provably mutates nothing but the
scheduler's pick counter and charges a cost that is a closed-form
function of queue/heap lengths -- the contract exposed by
:meth:`repro.sched.base.Scheduler.idle_pick_cost`.  Per virtual step the
engine advances the parked cpu's clock by the same
``max(clock + cost + 1, next_event_target)`` rule as
``Runtime._idle`` after ``Runtime._charge``, defers the (associative,
modulo-wrap) instruction-counter records, and counts the pick.  Deferred
state is flushed before anything that could observe it: any real
dispatch, any exception (including the watchdog's
:class:`~repro.threads.errors.StepBudgetExceeded`), and loop exit.  The
moment any exactness precondition fails -- a thread becomes runnable, an
event comes due at or before a parked clock, the scheduler is not
quiescent -- the engine unparks every cpu and falls back to faithful
stepped iterations, so unknown schedulers and the model checker's
controlled runs degrade to the stepped loop, never to wrong answers.

Every simulated counter -- per-cpu cycles and instruction counters, miss
counts, footprints, context switches, scheduler pick/steal/heap
statistics, watchdog checkpoints -- is therefore bit-identical between
``--engine stepped`` and ``--engine event``; the CI ``engine-parity``
job proves it over every policy x workload fixture cell (see
``tests/sim/test_engine_parity.py`` and docs/MODEL.md).
"""

from __future__ import annotations

import heapq
from enum import IntEnum
from typing import (
    TYPE_CHECKING,
    Any,
    List,
    Optional,
    Tuple,
)

from repro.machine.counters import CounterEvent
from repro.threads import events as ev
from repro.threads.errors import StepBudgetExceeded
from repro.threads.thread import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.threads.runtime import Runtime


class EventKind(IntEnum):
    """Taxonomy of queued simulation events (docs/MODEL.md).

    ========================  ==============================================
    ``THREAD_WAKEUP``         a ``Sleep`` timer expires; the sleeping
                              thread is woken (both engines)
    ``THREAD_BLOCK``          audit marker emitted when a thread blocks;
                              blocks are synchronous in this simulator, so
                              the kind is recorded to the event log, never
                              scheduled into the future
    ``QUANTUM_EXPIRE``        time-slice preemption deadline armed at
                              dispatch when ``Runtime(quantum=N)``; fires a
                              synthetic ``Yield`` if the same dispatch is
                              still running
    ``SCHED_TICK``            periodic callback into the runtime
                              (:meth:`Runtime.schedule_tick`)
    ``RT_PERIOD_START``       periodic early wakeup of a realtime/server
                              thread (:meth:`Runtime.at_periodic`); bumps
                              the thread's ``ready_seq`` so its pending
                              ``THREAD_WAKEUP`` is lazily invalidated
    ========================  ==============================================
    """

    THREAD_WAKEUP = 0
    THREAD_BLOCK = 1
    QUANTUM_EXPIRE = 2
    SCHED_TICK = 3
    RT_PERIOD_START = 4


class Event:
    """One queued event, ordered by ``(time, seq, tid)``.

    ``seq`` is assigned by the queue in schedule order and is unique, so
    the triple is a total order: two events never compare equal and the
    heap's pop order is independent of push interleaving (the property
    pinned by the hypothesis test in ``tests/sim/test_events.py``).
    """

    __slots__ = ("time", "seq", "tid", "kind", "data", "cancelled")

    def __init__(
        self, time: int, seq: int, tid: int, kind: EventKind, data: Any
    ) -> None:
        self.time = time
        self.seq = seq
        self.tid = tid
        self.kind = kind
        self.data = data
        self.cancelled = False

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.time, self.seq, self.tid)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.seq != other.seq:
            return self.seq < other.seq
        return self.tid < other.tid

    def __repr__(self) -> str:
        return (
            f"Event(t={self.time}, seq={self.seq}, tid={self.tid}, "
            f"kind={self.kind.name})"
        )


class EventQueue:
    """Deterministic min-heap of :class:`Event`, with audited operations.

    ``heap`` is the underlying list; it is mutated in place and never
    rebound, so hot loops may keep a direct reference for emptiness and
    ``heap[0].time`` peeks.  ``pushes``/``pops`` are audited totals used
    by the O(events) complexity tests and benchmarks.
    """

    def __init__(self) -> None:
        self.heap: List[Event] = []
        self.pushes = 0
        self.pops = 0
        self._seq = 0
        #: optional bounded audit log of fired/emitted events, enabled by
        #: :meth:`enable_log` (traces and tests reconstruct timelines
        #: from it; ``None`` keeps the hot path free of log checks)
        self.log: Optional[List[Event]] = None
        self._log_limit = 0

    def enable_log(self, limit: int = 4096) -> None:
        """Keep the first ``limit`` fired/emitted events in :attr:`log`."""
        if self.log is None:
            self.log = []
        self._log_limit = limit

    def emit(self, time: int, kind: EventKind, tid: int) -> Event:
        """Record an event that already happened (e.g. THREAD_BLOCK).

        Emitted events carry queue-assigned sequence numbers but never
        enter the heap -- they are log entries, not scheduled work.
        """
        self._seq += 1
        event = Event(time, self._seq, tid, kind, None)
        self._log(event)
        return event

    def _log(self, event: Event) -> None:
        log = self.log
        if log is not None and len(log) < self._log_limit:
            log.append(event)

    def __len__(self) -> int:
        return len(self.heap)

    def schedule(
        self, time: int, kind: EventKind, tid: int, data: Any = None
    ) -> Event:
        """Schedule an event; returns it (keep it to :meth:`cancel`)."""
        self._seq += 1
        event = Event(time, self._seq, tid, kind, data)
        heapq.heappush(self.heap, event)
        self.pushes += 1
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event (skipped when popped)."""
        event.cancelled = True

    def peek(self) -> Optional[Event]:
        """The next live event without popping it."""
        heap = self.heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.pops += 1
        return heap[0] if heap else None

    def next_time(self) -> Optional[int]:
        """Simulated time of the next live event, if any."""
        event = self.peek()
        return None if event is None else event.time

    def pop(self) -> Optional[Event]:
        """Pop the next live event (``None`` when empty)."""
        heap = self.heap
        while heap:
            event = heapq.heappop(heap)
            self.pops += 1
            if not event.cancelled:
                return event
        return None

    # -- firing --------------------------------------------------------------

    def fire_due(self, runtime: "Runtime", now: int) -> None:
        """Fire every live event with ``time <= now``, in key order.

        This is the single dispatch point for both engines, so timer
        semantics cannot drift between them.  ``now`` is the acting cpu's
        cycle clock, exactly as the stepped loop passed it to the old
        timer release.
        """
        heap = self.heap
        while heap and heap[0].time <= now:
            event = heapq.heappop(heap)
            self.pops += 1
            if event.cancelled:
                continue
            if self.log is not None:
                self._log(event)
            kind = event.kind
            if kind is EventKind.THREAD_WAKEUP:
                thread, seq = event.data
                # lazy invalidation: an early wake (RT_PERIOD_START)
                # bumped ready_seq, making this timer stale
                if (
                    thread.state is ThreadState.SLEEPING
                    and thread.ready_seq == seq
                ):
                    runtime.timer_wakeups += 1
                    runtime._wake(thread)
            elif kind is EventKind.SCHED_TICK:
                callback, period = event.data
                callback(runtime, event.time)
                if period and runtime._live > 0:
                    self.schedule(
                        event.time + period, EventKind.SCHED_TICK,
                        event.tid, event.data,
                    )
            elif kind is EventKind.RT_PERIOD_START:
                period = event.data
                thread = runtime.threads.get(event.tid)
                if thread is None or not thread.alive:
                    continue
                if thread.state is ThreadState.SLEEPING:
                    runtime.early_wakeups += 1
                    runtime._wake(thread)
                self.schedule(
                    event.time + period, EventKind.RT_PERIOD_START,
                    event.tid, period,
                )
            elif kind is EventKind.QUANTUM_EXPIRE:
                cpu, thread, gen = event.data
                if (
                    runtime._current[cpu] is thread
                    and runtime._dispatch_gens[cpu] == gen
                ):
                    # forced preemption: a synthetic Yield, exactly the
                    # schedule controller's mechanism -- the body
                    # generator is NOT advanced
                    runtime.preemptions += 1
                    runtime.events_executed += 1
                    runtime._execute(cpu, thread, ev.Yield())
            # THREAD_BLOCK is emitted to the log, never scheduled; a
            # future kind reaching here would be silently dropped, so:
            elif kind is not EventKind.THREAD_BLOCK:  # pragma: no cover
                raise ValueError(f"unhandled event kind {kind!r}")


class EventEngine:
    """The event-driven scheduler loop (``Runtime(engine="event")``).

    Persistent across :meth:`run` calls so the watchdog's chunked
    ``run(max_events=...)`` supervision resumes parked state exactly.
    See the module docstring for the parity argument.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        num_cpus = len(runtime.machine.cpus)
        #: cpus currently parked (idle-quiescent, virtually stepped)
        self._parked: List[bool] = [False] * num_cpus
        self._parked_count = 0
        #: deferred idle-pick instruction charges per cpu (clock is kept
        #: live; only the counter records + instruction totals wait)
        self._pending: List[int] = [0] * num_cpus
        #: virtual failed picks not yet accounted to the scheduler
        self._virtual_picks = 0
        self._has_pending = False
        #: per-cpu idle-pick cost certificates, valid while the
        #: runtime's sched_epoch is unchanged (scheduler state can only
        #: move at dispatch/wake/interval-end/create, each of which
        #: bumps the epoch)
        self._costs: List[Optional[int]] = [None] * num_cpus
        self._cost_epoch = -1

    # -- deferred-state management -------------------------------------------

    def _flush(self) -> None:
        """Apply deferred virtual-step effects.

        Counter records are associative modulo the register width and the
        instruction totals are plain sums, so one batched record per cpu
        equals the stepped loop's per-iteration records bit for bit.
        """
        if not self._has_pending:
            return
        runtime = self.runtime
        if self._virtual_picks:
            runtime.scheduler.account_idle_picks(self._virtual_picks)
            self._virtual_picks = 0
        pending = self._pending
        cpus = runtime.machine.cpus
        for i, n in enumerate(pending):
            if n:
                proc = cpus[i]
                proc.instructions += n
                proc.counters.record(CounterEvent.INSTRUCTIONS, n)
                proc.counters.record(CounterEvent.CYCLES, n)
                pending[i] = 0
        self._has_pending = False

    def _unpark_all(self) -> None:
        """Fall back to faithful stepped iterations for every cpu."""
        self._flush()
        parked = self._parked
        for i in range(len(parked)):
            parked[i] = False
        self._parked_count = 0

    # -- the loop ------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> None:
        try:
            self._run(max_events)
        except BaseException:
            # the stepped loop applies every completed iteration's charges
            # before an exception surfaces; make deferred state match
            self._flush()
            raise
        self._flush()

    def _run(self, max_events: Optional[int]) -> None:
        runtime = self.runtime
        machine = runtime.machine
        cpus = machine.cpus
        scheduler = runtime.scheduler
        queue = runtime.event_queue
        heap = queue.heap  # mutated in place by the queue, never rebound
        current = runtime._current
        step = runtime._step
        num_cpus = len(cpus)
        parked = self._parked
        has_runnable = scheduler.has_runnable
        while runtime._live > 0:
            if (
                max_events is not None
                and runtime.events_executed >= max_events
            ):
                raise StepBudgetExceeded(max_events)
            # the acting cpu: smallest clock, ties to the lowest id --
            # the stepped loop's _min_clock_cpu restricted to unparked
            # cpus (parked ones are drained below, in stepped order)
            cpu = -1
            best = 0
            for i in range(num_cpus):
                if not parked[i]:
                    c = cpus[i].cycles
                    if cpu < 0 or c < best:
                        cpu, best = i, c
            if cpu < 0:  # pragma: no cover - the last idle cpu never parks
                self._unpark_all()
                continue
            if self._parked_count and not self._drain(cpu, best):
                # a precondition failed mid-drain; everyone is unparked
                # and the next argmin replays the moment faithfully
                continue
            if heap and heap[0].time <= best:
                # events due: a fully faithful iteration (firing can
                # preempt or wake, so current[] is read after, exactly
                # as the stepped loop orders it)
                runtime.loop_steps += 1
                queue.fire_due(runtime, best)
                thread = current[cpu]
                if thread is not None:
                    step(cpu, thread)
                    continue
                if self._has_pending:
                    self._flush()
                if runtime._dispatch(cpu) is None:
                    runtime._idle(cpu)
                continue
            thread = current[cpu]
            if thread is not None:
                runtime.loop_steps += 1
                step(cpu, thread)
                continue
            # An idle iteration with nothing due.  Park right here when
            # the scheduler certifies quiescence: this very iteration (a
            # failed pick + idle jump) is then replayed virtually by a
            # later drain, in identical state, because nothing acts
            # before that drain reaches this cpu.  One cpu always stays
            # unparked as the loop's faithful anchor.
            if (
                self._parked_count < num_cpus - 1
                and not has_runnable()
                and self._certify(cpu) is not None
            ):
                parked[cpu] = True
                self._parked_count += 1
                continue
            runtime.loop_steps += 1
            # a real pick observes the scheduler's pick counter and the
            # per-cpu instruction counters: settle deferred state first
            if self._has_pending:
                self._flush()
            if runtime._dispatch(cpu) is None:
                runtime._idle(cpu)

    def _certify(self, cpu: int) -> Optional[int]:
        """The cpu's idle-pick cost certificate, cached per sched epoch.

        Scheduler state moves only through the runtime's callback sites
        (pick, ready, dispatched, blocked, created), each of which bumps
        ``sched_epoch``; within an epoch the certificates are constant,
        so one O(cpus) refresh amortises over every park decision and
        drained virtual step until the next scheduler callback.
        """
        runtime = self.runtime
        epoch = runtime.sched_epoch
        if self._cost_epoch != epoch:
            get_cost = runtime.scheduler.idle_pick_cost
            costs = self._costs
            for i in range(len(costs)):
                costs[i] = get_cost(i)
            self._cost_epoch = epoch
        return self._costs[cpu]

    def _drain(self, cpu: int, best: int) -> bool:
        """Virtually replay every parked iteration due before ``(best, cpu)``.

        The stepped loop would give each parked cpu ``k`` with
        ``(clock_k, k) < (best, cpu)`` one failed-pick iteration before
        the acting cpu moves; between those iterations and the acting
        cpu's, no other cpu acts, so the scheduler state, heap and busy
        clocks observed here are exactly what each replayed iteration
        would have seen.  The iterations are mutually independent (each
        touches only its own clock and deferred charges), so one pass in
        cpu-id order is exact.

        Returns ``False`` when an exactness precondition failed -- the
        scheduler has runnable work, an event is due at or before a
        parked clock, the cost certificate was withdrawn, or a parked cpu
        would *still* precede the acting cpu after its jump (its target
        was an imminent event it must fire faithfully).  In that case
        every cpu has been unparked and the caller restarts its argmin.
        """
        runtime = self.runtime
        cpus = runtime.machine.cpus
        parked = self._parked
        num_cpus = len(parked)
        heap = runtime.event_queue.heap
        pending = self._pending
        costs = self._costs
        next_ev = -1
        target = -2  # sentinel: window setup not yet done
        for k in range(num_cpus):
            if not parked[k]:
                continue
            proc = cpus[k]
            v = proc.cycles
            if v > best or (v == best and k > cpu):
                continue  # k acts after the acting cpu; nothing owed yet
            if target == -2:
                # One-time setup for this drain: preconditions that are
                # constant across the window (nothing acts in between).
                if runtime.scheduler.has_runnable():
                    self._unpark_all()
                    return False
                epoch = runtime.sched_epoch
                if self._cost_epoch != epoch:
                    get_cost = runtime.scheduler.idle_pick_cost
                    for i in range(num_cpus):
                        costs[i] = get_cost(i)
                    self._cost_epoch = epoch
                if heap:
                    next_ev = heap[0].time
                # _idle()'s jump target: min over busy clocks + 1 and
                # the next event time
                current = runtime._current
                target = -1
                for i in range(num_cpus):
                    if current[i] is not None:
                        c = cpus[i].cycles + 1
                        if target < 0 or c < target:
                            target = c
                if next_ev >= 0 and (target < 0 or next_ev < target):
                    target = next_ev
                if target < 0:
                    # deadlock detection belongs to the faithful path
                    self._unpark_all()
                    return False
            if next_ev >= 0 and next_ev <= v:
                # due event: it must fire on k's faithful iteration
                self._unpark_all()
                return False
            cost = costs[k]
            if cost is None:
                self._unpark_all()
                return False
            # exactly _charge(cost) then _idle(): the clock first gains
            # the pick cost, then jumps to max(clock + 1, target)
            jump = v + cost + 1
            new = jump if jump > target else target
            proc.cycles = new
            if cost:
                pending[k] += cost
            self._virtual_picks += 1
            self._has_pending = True
            runtime.virtual_steps += 1
            if new < best or (new == best and k < cpu):
                # the jump target was an imminent event and k still
                # precedes the acting cpu: k's next iteration must run
                # faithfully (it fires the event and may dispatch)
                self._unpark_all()
                return False
        return True
