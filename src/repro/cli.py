"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``        one workload under one policy, printing the counters;
- ``compare``    one workload under FCFS/LFF/CRT side by side;
- ``trace``      a monitored app's footprint trace vs the model;
- ``model``      evaluate the closed-form model directly;
- ``experiment`` regenerate a paper table/figure by name;
- ``faults run`` the fault-injection campaign (robustness contract);
- ``analyze``    annotation lint / lock-order / race passes (byte-stable);
- ``staticshare``  the static sharing inference: predicted ``at_share``
  graphs from source, cross-validated against the dynamic audit;
- ``lint``       the repro-lint determinism pass over the simulator source;
- ``mc``         the schedule model checker (DPOR) + symbolic cache-model
  verification (MC001-MC005);
- ``bench``      the performance-regression harness: ``run`` a suite to
  ``BENCH_<suite>.json``, ``compare`` two result files with noise-aware
  thresholds, ``update-baseline`` to re-record a checked-in baseline;
- ``dispatch worker``  join a running cluster coordinator as a shard
  worker node (what an SSH launcher runs on each remote host).

The sweep commands (``faults run``, ``experiment``, ``mc``,
``bench run``) take ``--jobs N`` to shard over a process pool via
:mod:`repro.parallel`; output is bit-identical to ``--jobs 1``
(docs/PARALLEL.md).  ``--backend cluster`` routes the same shards
through the fault-tolerant dispatch layer instead of the local pool,
and ``--cache-dir`` (not on ``bench``) makes the sweep resumable via
the content-addressed result cache -- neither changes the output.

Everything except ``bench`` (which measures host wall time) is
deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.model import SharedStateModel
from repro.machine.configs import E5000_8CPU, ULTRA1
from repro.sched import SCHEDULERS
from repro.sim.driver import run_monitored, run_performance
from repro.sim.report import format_series, format_table
from repro.workloads import (
    ANOMALOUS_APPS,
    MONITORED_APPS,
    PERFORMANCE_WORKLOADS,
    MergeParams,
    PhotoParams,
    ServerParams,
    TasksParams,
    TspParams,
)

_PARAMS = {
    "tasks": TasksParams,
    "merge": MergeParams,
    "photo": PhotoParams,
    "tsp": TspParams,
    "server": ServerParams,
}

_EXPERIMENTS = {}


def _shard_progress(outcome, done, total) -> None:
    """Progress line per finished shard (stderr, never in the report)."""
    status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
    retries = (
        f" [attempt {outcome.attempts}]" if outcome.attempts > 1 else ""
    )
    where = f" @{outcome.node}" if outcome.node else ""
    print(
        f"  [{done}/{total}] {outcome.shard.key}: {status}{retries}{where}",
        file=sys.stderr,
    )


def _dispatch_kwargs(args):
    """``backend``/``cache``/``cluster`` kwargs from the common flags.

    Shared by every sweep command that grew ``--backend``/``--cache-dir``
    so the flags mean the same thing everywhere; ``--chaos-kill`` (fault
    campaign only, for the dispatch-chaos CI job) configures the cluster
    to kill that many of its own spawned workers mid-run.
    """
    from repro.parallel import ClusterConfig, ResultCache

    cache = None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        cache = ResultCache(cache_dir)
    cluster = None
    chaos_kill = getattr(args, "chaos_kill", 0)
    if chaos_kill:
        cluster = ClusterConfig(
            chaos_kill=chaos_kill,
            max_respawns=max(2, 2 * chaos_kill),
        )
    return {
        "backend": getattr(args, "backend", "local"),
        "cache": cache,
        "cluster": cluster,
    }


def _experiment_registry():
    """Lazy experiment table (imports are heavy enough to defer).

    Every entry takes the ``--jobs`` value plus the dispatch kwargs
    (``backend``/``cache``/``cluster``); all but the sharded sweeps
    ignore them.
    """
    if _EXPERIMENTS:
        return _EXPERIMENTS
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.fig5 import format_fig5, run_fig5
    from repro.experiments.fig6 import format_fig6, run_fig6
    from repro.experiments.fig7 import format_fig7, run_fig7
    from repro.experiments.fig8 import format_fig8, run_fig8
    from repro.experiments.fig9 import format_fig9, run_fig9
    from repro.experiments.table3 import format_table3, run_table3
    from repro.experiments.table5 import format_table5, run_table5
    from repro.experiments.fairness import (
        format_fairness_sweep,
        run_fairness_sweep,
    )
    from repro.experiments.inference_exp import (
        format_inference_comparison,
        run_inference_comparison,
    )
    from repro.experiments.offline import (
        format_offline_comparison,
        run_offline_comparison,
    )

    def fig4_text(jobs=1, **dispatch):
        panels = run_fig4()
        rows = [
            (panel, curve.label, 100.0 * curve.mean_relative_error)
            for panel, curves in panels.items()
            for curve in curves
        ]
        return format_table(
            ["panel", "curve", "rel.err %"], rows, title="Figure 4"
        )

    _EXPERIMENTS.update(
        {
            "fig4": fig4_text,
            "fig5": lambda jobs=1, machine_backend="sim", **kw: format_fig5(
                run_fig5(backend=machine_backend)
            ),
            "fig6": lambda jobs=1, machine_backend="sim", **kw: format_fig6(
                run_fig6(backend=machine_backend)
            ),
            "fig7": lambda jobs=1, machine_backend="sim", **kw: format_fig7(
                run_fig7(backend=machine_backend)
            ),
            "fig8": lambda jobs=1, machine_backend="sim", **kw: format_fig8(
                run_fig8(backend=machine_backend)
            ),
            "fig9": lambda jobs=1, machine_backend="sim", **kw: format_fig9(
                run_fig9(backend=machine_backend)
            ),
            "table3": lambda jobs=1, **kw: format_table3(run_table3()),
            "table5": lambda jobs=1, **kw: format_table5(run_table5()),
            "fairness": lambda jobs=1, **kw: format_fairness_sweep(
                run_fairness_sweep()
            ),
            "inference": lambda jobs=1, **kw: format_inference_comparison(
                run_inference_comparison()
            ),
            "offline": lambda jobs=1, **kw: format_offline_comparison(
                run_offline_comparison(
                    jobs=jobs,
                    progress=_shard_progress if jobs > 1 else None,
                    **kw,
                )
            ),
        }
    )
    return _EXPERIMENTS


def _config(cpus: int):
    if cpus == 1:
        return ULTRA1
    if cpus == 8:
        return E5000_8CPU
    return ULTRA1.with_cpus(cpus)


def _workload(name: str, paper_scale: bool):
    cls = PERFORMANCE_WORKLOADS[name]
    params_cls = _PARAMS[name]
    params = params_cls.paper_scale() if paper_scale else params_cls()
    return cls(params)


def _cmd_run(args) -> int:
    if args.report:
        from repro.machine.smp import Machine
        from repro.sim.analysis import run_report
        from repro.threads.runtime import Runtime

        machine = Machine(
            _config(args.cpus), seed=args.seed, backend=args.backend
        )
        runtime = Runtime(
            machine, SCHEDULERS[args.policy](), engine=args.engine
        )
        _workload(args.workload, args.paper_scale).build(runtime)
        runtime.run()
        print(run_report(machine, runtime))
        return 0
    result = run_performance(
        _workload(args.workload, args.paper_scale),
        _config(args.cpus),
        SCHEDULERS[args.policy](),
        seed=args.seed,
        engine=args.engine,
        backend=args.backend,
    )
    print(
        format_table(
            ["workload", "policy", "cpus", "cycles", "E-misses", "MPI",
             "switches"],
            [
                (
                    result.workload,
                    result.scheduler,
                    result.num_cpus,
                    result.cycles,
                    result.l2_misses,
                    result.mpi,
                    result.context_switches,
                )
            ],
            title="run",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base = None
    for policy in ("fcfs", "static", "lff", "crt"):
        result = run_performance(
            _workload(args.workload, args.paper_scale),
            _config(args.cpus),
            SCHEDULERS[policy](),
            seed=args.seed,
            engine=args.engine,
            backend=args.backend,
        )
        if base is None:
            base = result
        rows.append(
            (
                policy,
                result.l2_misses,
                100.0 * result.misses_eliminated_vs(base),
                result.speedup_vs(base),
            )
        )
    print(
        format_table(
            ["policy", "E-misses", "eliminated %", "rel perf"],
            rows,
            title=f"{args.workload} on {args.cpus} cpu(s)",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    apps = {**MONITORED_APPS, **ANOMALOUS_APPS}
    result = run_monitored(apps[args.app](), seed=args.seed,
                           backend=args.backend)
    print(
        format_table(
            ["app", "lang", "misses", "observed", "predicted", "pred/obs",
             "MAE"],
            [
                (
                    result.app,
                    result.language,
                    int(result.misses[-1]),
                    int(result.observed[-1]),
                    float(result.predicted[-1]),
                    result.final_ratio,
                    result.mean_absolute_error,
                )
            ],
            title="footprint trace",
        )
    )
    print("observed :", format_series(result.misses, result.observed))
    print("predicted:", format_series(result.misses, result.predicted))
    return 0


def _cmd_model(args) -> int:
    model = SharedStateModel(args.lines)
    misses = np.asarray(args.misses, dtype=np.int64)
    rows = [
        ("running (case 1)", *(f"{v:.1f}" for v in
                               np.atleast_1d(model.expected_running(args.initial, misses)))),
        ("independent (case 2)", *(f"{v:.1f}" for v in
                                   np.atleast_1d(model.expected_independent(args.initial, misses)))),
        (f"dependent q={args.q} (case 3)",
         *(f"{v:.1f}" for v in
           np.atleast_1d(model.expected_dependent(args.initial, args.q, misses)))),
    ]
    print(
        format_table(
            ["case"] + [f"n={n}" for n in misses],
            rows,
            title=f"E[F] for N={args.lines}, S0={args.initial}",
        )
    )
    return 0


def _cmd_experiment(args) -> int:
    registry = _experiment_registry()
    print(
        registry[args.name](
            jobs=args.jobs,
            machine_backend=getattr(args, "machine_backend", "sim"),
            **_dispatch_kwargs(args),
        )
    )
    return 0


def _cmd_faults_run(args) -> int:
    from repro.faults import (
        FAULT_CLASSES,
        campaign_workloads,
        format_campaign,
        run_campaign,
    )

    workloads = campaign_workloads(args.scale)
    workload_names = list(workloads)
    if args.workload != "all":
        if args.workload not in workloads:
            print(
                "repro faults run: unknown workload %r (choose from %s)"
                % (args.workload, ", ".join(sorted(workloads) + ["all"])),
                file=sys.stderr,
            )
            return 2
        workload_names = [args.workload]
    if args.fault != "all" and args.fault not in FAULT_CLASSES:
        print(
            "repro faults run: unknown fault class %r (choose from %s)"
            % (args.fault, ", ".join(sorted(FAULT_CLASSES) + ["all"])),
            file=sys.stderr,
        )
        return 2
    fault_classes = (
        list(FAULT_CLASSES) if args.fault == "all" else [args.fault]
    )
    rows = run_campaign(
        scale=args.scale,
        workload_names=workload_names,
        policies=tuple(args.policy or ("fcfs", "lff")),
        fault_classes=fault_classes,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
        progress=_shard_progress if args.jobs > 1 else None,
        **_dispatch_kwargs(args),
    )
    print(format_campaign(rows))
    return 0 if all(r.ok for r in rows) else 1


def _cmd_analyze(args) -> int:
    from repro.analysis import (
        lint_workload_names,
        run_analysis,
        write_baseline,
    )

    names = lint_workload_names()
    if not args.all_workloads and args.workload:
        unknown = [w for w in args.workload if w not in names]
        if unknown:
            print(
                "repro analyze: unknown workload(s) %s (choose from %s)"
                % (", ".join(unknown), ", ".join(names)),
                file=sys.stderr,
            )
            return 2
        names = args.workload
    passes = tuple(args.passes or ())
    if args.suggest or args.fix:
        return _analyze_repair(args, names, passes)
    report = run_analysis(
        workloads=names,
        passes=passes if passes else ("annotations", "locks", "races"),
        baseline_path=args.baseline,
        with_lint=args.with_lint,
        with_mc=args.mc,
        mc_budget=args.mc_budget,
        with_static=args.static,
    )
    if args.waive:
        from repro.analysis.diagnostics import add_waiver

        if args.baseline is None or not args.waive_reason:
            print(
                "repro analyze: --waive needs --baseline FILE and "
                "--waive-reason TEXT",
                file=sys.stderr,
            )
            return 2
        error = add_waiver(args.baseline, report, args.waive, args.waive_reason)
        if error is not None:
            print(f"repro analyze: {error}", file=sys.stderr)
            return 1
        print(f"waived {args.waive}: {args.waive_reason}")
        return 0
    if args.update_baseline:
        from repro.analysis.diagnostics import refresh_baseline

        if args.baseline is None:
            print(
                "repro analyze: --update-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        blocking = refresh_baseline(args.baseline, report)
        if blocking:
            print(
                "repro analyze: refusing to update the baseline -- "
                f"{len(blocking)} new error-severity finding(s) would be "
                "buried:",
                file=sys.stderr,
            )
            for diag in blocking:
                print(f"  {diag.render()}", file=sys.stderr)
            return 1
        print(
            f"updated {args.baseline} with {len(report.diagnostics)} "
            "fingerprint(s)"
        )
        return 0
    if args.write_baseline:
        if args.baseline is None:
            print(
                "repro analyze: --write-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        from repro.analysis.diagnostics import load_waivers

        write_baseline(args.baseline, report, waivers=load_waivers(args.baseline))
        print(f"wrote {len(report.diagnostics)} fingerprint(s) to {args.baseline}")
        return 0
    print(report.render())
    failed = bool(report.new_diagnostics())
    if args.strict_baseline:
        stale = report.stale_fingerprints()
        if stale:
            print(
                f"repro analyze: {len(stale)} stale baseline "
                "fingerprint(s) no longer produced by any pass "
                "(regenerate with --update-baseline):",
                file=sys.stderr,
            )
            for fp in stale:
                print(f"  {fp}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _analyze_repair(args, names, passes) -> int:
    """``repro analyze --suggest`` / ``--fix``: the repair engine."""
    from repro.analysis import lint_workload_names, run_analysis
    from repro.analysis.diagnostics import refresh_baseline
    from repro.analysis.repair import (
        apply_fixes,
        reload_workload_modules,
        render_report,
        repair_workload,
    )
    from repro.analysis.sources import SourceRegistry

    registry = SourceRegistry()
    patched_paths = []
    for name in sorted(names):
        result = repair_workload(
            name, with_static=args.static, registry=registry
        )
        for line in render_report(result):
            print(line)
        if args.fix:
            for path in apply_fixes(result.patchable_fixes):
                patched_paths.append(path)
                print(f"  patched {path}")
    if not args.fix:
        return 0
    if not patched_paths:
        print("repro analyze --fix: nothing to patch")
        return 0
    # the repaired annotations must pass a fresh audit; regenerate the
    # baseline so resolved findings drop out (waivers are preserved)
    reload_workload_modules()
    if args.baseline is None:
        return 0
    # the baseline file is global, so the refresh must audit every
    # workload even when --fix targeted one -- otherwise the untargeted
    # workloads' accepted findings would silently drop out
    report = run_analysis(
        workloads=lint_workload_names(),
        passes=passes if passes else ("annotations", "locks", "races"),
        baseline_path=args.baseline,
        with_lint=args.with_lint,
        with_static=args.static,
    )
    blocking = refresh_baseline(args.baseline, report)
    if blocking:
        print(
            "repro analyze --fix: repaired run still has "
            f"{len(blocking)} new error-severity finding(s); baseline "
            "left untouched:",
            file=sys.stderr,
        )
        for diag in blocking:
            print(f"  {diag.render()}", file=sys.stderr)
        return 1
    print(
        f"updated {args.baseline} with {len(report.diagnostics)} "
        "fingerprint(s)"
    )
    return 0


def _cmd_staticshare(args) -> int:
    """``repro staticshare``: the static sharing inference, standalone."""
    from repro.analysis import lint_workload_names
    from repro.analysis.engine import audit_workload, static_validate_workload
    from repro.analysis.sources import SourceRegistry
    from repro.analysis.staticshare import render_prediction

    names = lint_workload_names()
    if args.workload:
        unknown = [w for w in args.workload if w not in names]
        if unknown:
            print(
                "repro staticshare: unknown workload(s) %s (choose from %s)"
                % (", ".join(unknown), ", ".join(names)),
                file=sys.stderr,
            )
            return 2
        names = args.workload
    registry = SourceRegistry()
    failed = False
    blocks = []
    for name in sorted(names):
        audit = None
        if not args.no_dynamic:
            audit = audit_workload(
                name, passes=("annotations",), registry=registry
            )
        validation = static_validate_workload(
            name, registry=registry, audit=audit
        )
        if validation is None:
            print(
                f"repro staticshare: {name}: source not statically "
                "analyzable",
                file=sys.stderr,
            )
            failed = True
            continue
        block = render_prediction(validation.prediction, validation)
        for diag in validation.diagnostics:
            block += f"\n  {diag.render()}"
            failed = True
        blocks.append(block)
    print("\n\n".join(blocks))
    return 1 if failed else 0


def _cmd_mc(args) -> int:
    from repro.analysis.mc import (
        BUDGETS,
        FIXTURES,
        explore_all,
        format_mc_report,
        verify_cache_model,
    )

    fixtures = args.fixture or None
    if fixtures:
        unknown = [f for f in fixtures if f not in FIXTURES]
        if unknown:
            print(
                "repro mc: unknown fixture(s) %s (choose from %s)"
                % (", ".join(unknown), ", ".join(sorted(FIXTURES))),
                file=sys.stderr,
            )
            return 2
    results, diagnostics = explore_all(
        BUDGETS[args.budget],
        fixtures=fixtures,
        dpor=not args.no_dpor,
        chaos=not args.no_chaos,
        jobs=args.jobs,
        progress=_shard_progress if args.jobs > 1 else None,
        **_dispatch_kwargs(args),
    )
    stats = None
    if not args.skip_model:
        model_diags, stats = verify_cache_model()
        diagnostics = sorted(
            list(diagnostics) + model_diags, key=lambda d: d.sort_key
        )
    print(format_mc_report(results, stats, diagnostics))
    incomplete = [r.label for r in results if not r.complete]
    if incomplete:
        print(
            "warning: exploration incomplete (budget exhausted) for: "
            + ", ".join(incomplete),
            file=sys.stderr,
        )
    return 1 if diagnostics else 0


def _parse_regress(text: str) -> float:
    """Parse a regression threshold: '40%', '40', or '0.4' all mean 40%."""
    raw = text.strip()
    percent = raw.endswith("%")
    value = float(raw.rstrip("%"))
    if percent or value > 1.0:
        value /= 100.0
    if value < 0.0:
        raise ValueError("threshold must be non-negative")
    return value


def _cmd_bench_run(args) -> int:
    from repro.bench import (
        default_baseline_path,
        format_suite,
        run_suite,
        suite_names,
        write_suite,
    )

    if args.suite not in suite_names():
        print(
            "repro bench run: unknown suite %r (choose from %s)"
            % (args.suite, ", ".join(suite_names())),
            file=sys.stderr,
        )
        return 2
    result = run_suite(
        args.suite,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
        jobs=args.jobs,
        backend=args.backend,
    )
    out = args.out or default_baseline_path(args.suite)
    write_suite(out, result)
    print(format_suite(result))
    print(f"wrote {out}")
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench import (
        SchemaError,
        compare,
        format_comparison,
        load_suite,
        run_suite,
        suite_names,
    )

    try:
        threshold = _parse_regress(args.max_regress)
    except ValueError:
        print(
            f"repro bench compare: bad --max-regress {args.max_regress!r}",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_suite(args.baseline)
    except (OSError, SchemaError) as exc:
        print(f"repro bench compare: {exc}", file=sys.stderr)
        return 2
    if args.new is not None:
        try:
            fresh = load_suite(args.new)
        except (OSError, SchemaError) as exc:
            print(f"repro bench compare: {exc}", file=sys.stderr)
            return 2
    else:
        # no fresh file given: re-run the baseline's suite now
        if baseline.suite not in suite_names():
            print(
                "repro bench compare: baseline names unknown suite "
                f"{baseline.suite!r}; pass --new FILE",
                file=sys.stderr,
            )
            return 2
        fresh = run_suite(
            baseline.suite,
            progress=lambda name: print(
                f"  running {name} ...", file=sys.stderr
            ),
        )
    result = compare(
        baseline, fresh, max_regress=threshold,
        noise_aware=not args.no_noise,
    )
    print(format_comparison(result))
    return 0 if result.ok else 1


def _cmd_bench_update(args) -> int:
    import os

    from repro.bench import (
        compare,
        default_baseline_path,
        format_comparison,
        load_suite,
        run_suite,
        suite_names,
        write_suite,
    )

    if args.suite not in suite_names():
        print(
            "repro bench update-baseline: unknown suite %r (choose from %s)"
            % (args.suite, ", ".join(suite_names())),
            file=sys.stderr,
        )
        return 2
    path = args.baseline or default_baseline_path(args.suite)
    result = run_suite(
        args.suite,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    if os.path.exists(path):
        # informational diff against the baseline being replaced
        try:
            print(format_comparison(compare(load_suite(path), result)))
        except Exception as exc:  # old file unreadable: still replace it
            print(f"(old baseline unreadable: {exc})", file=sys.stderr)
    write_suite(path, result)
    print(f"updated {path}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths

    found = lint_paths(args.paths or None)
    for diag in found:
        print(diag.render())
    print(f"-- repro-lint: {len(found)} finding(s)")
    return 1 if found else 0


def _cmd_dispatch_worker(args) -> int:
    from repro.parallel.dispatch import worker

    argv = ["--connect", args.connect]
    if args.node_id:
        argv += ["--node-id", args.node_id]
    if args.chaos:
        argv += ["--chaos", args.chaos]
    return worker.main(argv)


def _add_backend_flag(p) -> None:
    """The ``--backend`` flag of the simulation-running commands.

    Not to be confused with the sweep commands' dispatch ``--backend``
    (local/cluster): there the shards run the same simulation elsewhere;
    here the *cache model itself* changes.  The ``experiment`` command
    has both, so its cache-model flag is spelled ``--machine-backend``.
    """
    from repro.machine.backend import BACKEND_NAMES, DEFAULT_BACKEND

    p.add_argument(
        "--backend", choices=BACKEND_NAMES, default=DEFAULT_BACKEND,
        help="cache backend: 'sim' replays every reference through the "
        "simulated hierarchy, 'analytic' prices misses with the "
        "closed-form reuse-distance model -- orders of magnitude faster "
        "for sweeps, approximate within the bounds the analytic-oracle "
        "CI job pins (docs/MODEL.md 'The analytic backend')",
    )


def _add_engine_flag(p) -> None:
    """The ``--engine`` flag every simulation-running command shares."""
    from repro.threads.runtime import Runtime

    p.add_argument(
        "--engine", choices=Runtime.ENGINES, default="stepped",
        help="scheduling loop: the quantum-stepped reference engine, or "
        "the event-driven engine that skips blocked/idle time (counters "
        "are bit-identical either way -- docs/MODEL.md)",
    )


def _add_dispatch_flags(p, with_cache=True) -> None:
    """The ``--backend``/``--cache-dir`` flags every sweep command shares."""
    p.add_argument(
        "--backend", choices=("local", "cluster"), default="local",
        help="shard dispatch backend: this host's process pool, or the "
        "fault-tolerant cluster layer (docs/PARALLEL.md); output is "
        "bit-identical either way",
    )
    if with_cache:
        p.add_argument(
            "--cache-dir", dest="cache_dir", metavar="DIR",
            help="content-addressed result cache directory: finished "
            "cells are skipped on re-run (resumable sweeps)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thread-locality scheduling reproduction (ASPLOS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload under one policy")
    run_p.add_argument("--workload", choices=sorted(PERFORMANCE_WORKLOADS),
                       required=True)
    run_p.add_argument("--policy", choices=sorted(SCHEDULERS), default="lff")
    run_p.add_argument("--cpus", type=int, default=1)
    run_p.add_argument("--paper-scale", action="store_true")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--report", action="store_true",
        help="print the full post-run analysis instead of one row",
    )
    _add_engine_flag(run_p)
    _add_backend_flag(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="FCFS vs LFF vs CRT")
    cmp_p.add_argument("--workload", choices=sorted(PERFORMANCE_WORKLOADS),
                       required=True)
    cmp_p.add_argument("--cpus", type=int, default=1)
    cmp_p.add_argument("--paper-scale", action="store_true")
    cmp_p.add_argument("--seed", type=int, default=0)
    _add_engine_flag(cmp_p)
    _add_backend_flag(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    trace_p = sub.add_parser("trace", help="footprint trace of one app")
    trace_p.add_argument(
        "--app",
        choices=sorted({**MONITORED_APPS, **ANOMALOUS_APPS}),
        required=True,
    )
    trace_p.add_argument("--seed", type=int, default=0)
    _add_backend_flag(trace_p)
    trace_p.set_defaults(func=_cmd_trace)

    model_p = sub.add_parser("model", help="evaluate the closed-form model")
    model_p.add_argument("--lines", type=int, default=8192)
    model_p.add_argument("--initial", type=float, default=0.0)
    model_p.add_argument("--q", type=float, default=0.5)
    model_p.add_argument("--misses", type=int, nargs="+",
                         default=[0, 1000, 4000, 16000])
    model_p.set_defaults(func=_cmd_model)

    exp_p = sub.add_parser("experiment", help="regenerate a table/figure")
    exp_p.add_argument(
        "name",
        choices=[
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table3", "table5", "fairness", "inference", "offline",
        ],
    )
    exp_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sharded sweeps (offline); results are "
        "bit-identical to --jobs 1",
    )
    _add_dispatch_flags(exp_p)
    exp_p.add_argument(
        "--machine-backend", dest="machine_backend",
        choices=("sim", "analytic"), default="sim",
        help="cache backend for the simulated runs (--backend here "
        "already means shard dispatch): 'analytic' prices misses with "
        "the closed-form reuse-distance model (docs/MODEL.md)",
    )
    exp_p.set_defaults(func=_cmd_experiment)

    faults_p = sub.add_parser(
        "faults", help="fault injection: hints must never affect correctness"
    )
    faults_sub = faults_p.add_subparsers(dest="faults_command", required=True)
    faults_run_p = faults_sub.add_parser(
        "run", help="run the fault campaign and report per-cell outcomes"
    )
    # choices are resolved lazily at run time; listed here for --help only
    faults_run_p.add_argument(
        "--workload",
        default="all",
        help="campaign workload name, or 'all' "
        "(randomwalk/tasks/merge/photo/tsp)",
    )
    faults_run_p.add_argument(
        "--fault",
        default="all",
        help="fault class name (see repro.faults.FAULT_CLASSES), or 'all'",
    )
    faults_run_p.add_argument(
        "--policy",
        action="append",
        choices=sorted(SCHEDULERS),
        help="policy to exercise (repeatable; default: fcfs and lff)",
    )
    faults_run_p.add_argument(
        "--scale", choices=("smoke", "default"), default="smoke"
    )
    faults_run_p.add_argument("--seed", type=int, default=0)
    _add_engine_flag(faults_run_p)
    faults_run_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes ((workload, policy) pairs fan out; the "
        "merged table is bit-identical to --jobs 1)",
    )
    _add_dispatch_flags(faults_run_p)
    faults_run_p.add_argument(
        "--chaos-kill", dest="chaos_kill", type=int, default=0,
        metavar="N",
        help="testing only (--backend cluster): kill N spawned workers "
        "after their first result to exercise reassignment; the merged "
        "table must still be bit-identical (the dispatch-chaos CI job)",
    )
    faults_run_p.set_defaults(func=_cmd_faults_run)

    analyze_p = sub.add_parser(
        "analyze",
        help="annotation lint, lock-order, and race analysis passes",
    )
    analyze_p.add_argument(
        "--workload",
        action="append",
        help="workload to analyze (repeatable; default: all)",
    )
    analyze_p.add_argument(
        "--all-workloads", action="store_true",
        help="analyze every registered workload",
    )
    analyze_p.add_argument(
        "--pass",
        dest="passes",
        action="append",
        choices=("annotations", "locks", "races"),
        help="run only this pass (repeatable; default: all three)",
    )
    analyze_p.add_argument(
        "--baseline",
        help="baseline file of accepted diagnostic fingerprints",
    )
    analyze_p.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into --baseline and exit",
    )
    analyze_p.add_argument(
        "--with-lint", action="store_true",
        help="also run the repro-lint determinism pass",
    )
    analyze_p.add_argument(
        "--mc", action="store_true",
        help="also run the schedule model checker and the symbolic "
        "cache-model verification (slower)",
    )
    analyze_p.add_argument(
        "--mc-budget", choices=("small", "full"), default="small",
        help="exploration budget for --mc (default: small)",
    )
    analyze_p.add_argument(
        "--update-baseline", action="store_true",
        help="regenerate --baseline from current findings, refusing if "
        "new error-severity findings would be buried",
    )
    analyze_p.add_argument(
        "--suggest", action="store_true",
        help="run the annotation repair engine and report verified "
        "fixes + suggestions without touching any file",
    )
    analyze_p.add_argument(
        "--fix", action="store_true",
        help="apply verified literal annotation patches in place and "
        "regenerate --baseline from the repaired workloads",
    )
    analyze_p.add_argument(
        "--strict-baseline", action="store_true",
        help="also fail on stale baseline entries the current run no "
        "longer produces",
    )
    analyze_p.add_argument(
        "--waive", metavar="FINGERPRINT",
        help="record a waive reason for one accepted finding in "
        "--baseline (requires --waive-reason)",
    )
    analyze_p.add_argument(
        "--waive-reason", metavar="TEXT",
        help="justification stored with --waive",
    )
    analyze_p.add_argument(
        "--static", action="store_true",
        help="also run the static sharing inference and cross-validate "
        "it against the dynamic audit (SA001-SA003); with --suggest, "
        "attach unexercised-path candidates from SA001 findings",
    )
    analyze_p.set_defaults(func=_cmd_analyze)

    staticshare_p = sub.add_parser(
        "staticshare",
        help="static sharing inference: predicted at_share graphs, "
        "cross-validated against the dynamic audit",
    )
    staticshare_p.add_argument(
        "--workload",
        action="append",
        help="workload to predict (repeatable; default: all)",
    )
    staticshare_p.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the instrumented run; report the pure static "
        "prediction without cross-validation",
    )
    staticshare_p.set_defaults(func=_cmd_staticshare)

    lint_p = sub.add_parser(
        "lint",
        help="repro-lint: determinism pass over the simulator source",
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files or directories under src/ (default: repro/sched, "
        "repro/sim, repro/machine)",
    )
    lint_p.set_defaults(func=_cmd_lint)

    mc_p = sub.add_parser(
        "mc",
        help="exhaustive schedule model checker (DPOR) + symbolic "
        "cache-model verification",
    )
    mc_p.add_argument(
        "--fixture", action="append",
        help="fixture to explore (repeatable; default: all registered)",
    )
    mc_p.add_argument(
        "--budget", choices=("small", "full"), default="small",
        help="exploration budget (full raises the preemption bound to 1)",
    )
    mc_p.add_argument(
        "--no-dpor", action="store_true",
        help="disable partial-order reduction: enumerate every schedule",
    )
    mc_p.add_argument(
        "--no-chaos", action="store_true",
        help="skip the re-exploration under corrupted annotations",
    )
    mc_p.add_argument(
        "--skip-model", action="store_true",
        help="skip the symbolic cache-model sweep",
    )
    mc_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (fixtures fan out; the merged report is "
        "bit-identical to --jobs 1)",
    )
    _add_dispatch_flags(mc_p)
    mc_p.set_defaults(func=_cmd_mc)

    bench_p = sub.add_parser(
        "bench",
        help="performance-regression harness (docs/BENCHMARKS.md)",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    bench_run_p = bench_sub.add_parser(
        "run", help="run a suite and write BENCH_<suite>.json"
    )
    bench_run_p.add_argument(
        "--suite", default="smoke",
        help="suite name (smoke, hotpaths, ...; default: smoke)",
    )
    bench_run_p.add_argument(
        "--out",
        help="output JSON path (default: BENCH_<suite>.json in the cwd)",
    )
    bench_run_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one benchmark per shard (timing stays "
        "per-shard through the audited clock; co-scheduled shards can "
        "contend, so gate comparisons serially)",
    )
    # no --cache-dir: a cached timing would report a past machine state
    _add_dispatch_flags(bench_run_p, with_cache=False)
    bench_run_p.set_defaults(func=_cmd_bench_run)

    bench_cmp_p = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json files; exit 1 on median regression",
    )
    bench_cmp_p.add_argument(
        "--baseline", required=True,
        help="checked-in baseline BENCH_*.json",
    )
    bench_cmp_p.add_argument(
        "--new",
        help="fresh results JSON (default: re-run the baseline's suite now)",
    )
    bench_cmp_p.add_argument(
        "--max-regress", default="25%",
        help="median-regression threshold, e.g. '40%%' (default: 25%%)",
    )
    bench_cmp_p.add_argument(
        "--no-noise", action="store_true",
        help="disable noise-aware threshold widening",
    )
    bench_cmp_p.set_defaults(func=_cmd_bench_compare)

    bench_up_p = bench_sub.add_parser(
        "update-baseline",
        help="re-run a suite and overwrite its checked-in baseline",
    )
    bench_up_p.add_argument(
        "--suite", default="smoke",
        help="suite name (default: smoke)",
    )
    bench_up_p.add_argument(
        "--baseline",
        help="baseline path to write (default: BENCH_<suite>.json)",
    )
    bench_up_p.set_defaults(func=_cmd_bench_update)

    dispatch_p = sub.add_parser(
        "dispatch",
        help="cluster dispatch plumbing (docs/PARALLEL.md)",
    )
    dispatch_sub = dispatch_p.add_subparsers(
        dest="dispatch_command", required=True
    )
    worker_p = dispatch_sub.add_parser(
        "worker",
        help="attach this host to a running coordinator as a worker node "
        "(what an SSH launcher runs remotely)",
    )
    worker_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address printed/configured by the sweep command",
    )
    worker_p.add_argument(
        "--node-id",
        help="node id to register as (default: worker-<pid>)",
    )
    worker_p.add_argument(
        "--chaos", default="",
        help="testing only: seeded kill points, e.g. 'die-after-results:1'",
    )
    worker_p.set_defaults(func=_cmd_dispatch_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
