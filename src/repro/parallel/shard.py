"""Shards: the unit of deterministic work partitioning.

A shard names a module-level callable by dotted path and carries the
keyword arguments to call it with.  Everything in a shard must pickle
(names and plain values, never closures or live objects), which is what
lets the same shard execute identically inline (``jobs=1``), in a
forked worker, or in a spawned one -- the worker re-resolves the
callable from the path and calls it with the shard's parameters, so a
shard's result is a pure function of ``(fn, params)``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class Shard:
    """One independent cell of a fan-out.

    ``index`` is the shard's position in the *serial* iteration order;
    the merge sorts completed shards by it, which is what makes the
    parallel output bit-identical to the serial run.  ``key`` is a
    stable human-readable id (``faults/merge/lff``) used in progress
    lines and failure reports.
    """

    index: int
    key: str
    #: dotted path of a module-level callable: ``package.module:name``
    fn: str
    #: keyword arguments for the callable; every value must pickle
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """What one shard's execution (including retries) produced."""

    shard: Shard
    status: str  # "ok" | "failed"
    value: Any = None
    error: str = ""
    #: executions performed (1 on a clean first run, 0 on a cache hit)
    attempts: int = 1
    #: attempts lost to a worker process/node dying (vs the shard raising)
    worker_crashes: int = 0
    #: per-attempt audit trail: one entry per *failed* attempt (the
    #: error message, prefixed with the node id on the cluster backend),
    #: in attempt order -- crash-recovery reports can show exactly what
    #: each retry saw instead of only the final error
    history: Tuple[str, ...] = ()
    #: who produced the value: "" for the local backend, the node id
    #: ("node0", an SSH host's id) for the cluster backend, "cache" for
    #: a content-addressed cache hit
    node: str = ""
    #: True when the value came from the result cache without executing
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ShardError(Exception):
    """Raised when shards failed and partial-results mode is off."""

    def __init__(self, message: str, outcomes: Sequence[ShardOutcome]):
        super().__init__(message)
        #: every outcome of the run, failed shards included
        self.outcomes = list(outcomes)

    @property
    def failed(self) -> Sequence[ShardOutcome]:
        return [o for o in self.outcomes if not o.ok]


def resolve_callable(path: str) -> Callable[..., Any]:
    """Resolve ``package.module:name`` to the callable it names."""
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"shard callable {path!r} must be 'package.module:name'"
        )
    module = importlib.import_module(module_name)
    target: Any = module
    for part in attr.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"shard callable {path!r} resolved to non-callable")
    return target  # type: ignore[no-any-return]


def execute_shard(shard: Shard) -> Any:
    """Run one shard to completion in the current process."""
    fn = resolve_callable(shard.fn)
    return fn(**dict(shard.params))
