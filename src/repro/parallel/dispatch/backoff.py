"""Decorrelated-jitter exponential backoff for shard retries.

A shard that raises on one node is retried, but not immediately: if the
failure came from a shared cause (an overloaded node, a transient
resource), synchronized retries from many shards would stampede.  The
scheme here is the "decorrelated jitter" variant: each successive delay
is drawn uniformly from ``[base, prev * 3]`` and clamped to ``cap``, so
delays grow roughly exponentially while two shards that failed together
never retry in lockstep.

Backoff affects *when* a shard re-runs, never *what* it computes, so it
is outside the determinism contract -- but the draw sequence itself is
still seeded (``random.Random``), so a given coordinator run's retry
timeline is reproducible in tests.
"""

from __future__ import annotations

import random
from typing import Dict


class DecorrelatedJitter:
    """Per-shard retry-delay state; one instance per coordinator run."""

    def __init__(self, base_s: float, cap_s: float, seed: int = 0) -> None:
        if base_s <= 0.0:
            raise ValueError("backoff base must be positive")
        if cap_s < base_s:
            raise ValueError("backoff cap must be >= base")
        self.base_s = base_s
        self.cap_s = cap_s
        self._rng = random.Random(seed)
        self._prev: Dict[int, float] = {}

    def next_delay(self, shard_index: int) -> float:
        """The delay before ``shard_index``'s next retry attempt."""
        prev = self._prev.get(shard_index, self.base_s)
        delay = min(self.cap_s, self._rng.uniform(self.base_s, prev * 3.0))
        self._prev[shard_index] = delay
        return delay

    def reset(self, shard_index: int) -> None:
        """Forget a shard's state (called when it finally succeeds)."""
        self._prev.pop(shard_index, None)
