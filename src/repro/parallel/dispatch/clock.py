"""The dispatch layer's audited clock.

Liveness genuinely needs host time: heartbeat deadlines, shard
timeouts, and steal thresholds are statements about *wall-clock*
worker health, not about simulated events.  But host time must never
leak into *results* -- the whole repository rests on bit-identical
replay -- so the same discipline the bench harness uses for timing
applies here: exactly one module reads the monotonic clock, everything
else takes a ``Clock`` as a parameter (tests substitute fakes), and
the determinism lint (DT006) flags any raw timer read elsewhere under
``repro/parallel/dispatch/``.

The clock is used purely for scheduling decisions (when to evict, when
to retry, when to steal); shard results remain pure functions of
``(fn, params)``, so no reading of this clock can change merged output.
"""

from __future__ import annotations

import time
from typing import Callable

#: a monotonic time source: seconds from an arbitrary origin
Clock = Callable[[], float]


def monotonic_clock() -> float:
    """The one audited host-time read of the dispatch layer."""
    return time.monotonic()
