"""The content-addressed shard-result cache.

A shard's result is a pure function of ``(callable path, params)`` --
that is the contract the whole parallel engine rests on -- so a result
can be *addressed by content*: the fingerprint of a shard is

    sha256(callable path || canonical(params) || code version)

and a result stored under that fingerprint is valid until any of the
three change.  ``canonical`` is a deterministic recursive encoding
(sorted dict keys, dataclasses by field name, sets sorted), so two
shards with equal parameters fingerprint identically regardless of
construction order.  The code version is conservative: a hash of every
``.py`` file under the installed ``repro`` package, so *any* source
change invalidates the whole cache rather than risking a stale result
(docs/PARALLEL.md discusses the trade-off).

This is what makes campaigns resumable: a killed run re-executes only
the cells whose results never made it to disk, and a warm re-run of an
unchanged campaign executes zero cells (asserted by the cache tests
and the ``dispatch-chaos`` CI job).

Failure semantics: the cache *never* turns a run into a failure.  An
unreadable or corrupt entry is a miss; an unwritable store is dropped
(the result is still returned to the caller).  Only ok results are
cached -- failures must re-execute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from typing import Any, Iterator, Optional, Tuple

from repro.parallel.shard import Shard

_CODE_VERSION_CACHE: Optional[str] = None


def _canonical_parts(value: Any) -> Iterator[str]:
    """Yield a deterministic token stream for ``value``.

    Every container is emitted with explicit delimiters and sorted
    where the source order is not meaningful, so equal values always
    produce equal streams and different shapes cannot collide.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        yield f"{type(value).__name__}:{value!r};"
    elif isinstance(value, float):
        # repr round-trips floats exactly in py>=3.1
        yield f"float:{value!r};"
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        yield f"dc:{type(value).__qualname__}("
        for f in dataclasses.fields(value):
            yield f"{f.name}="
            for part in _canonical_parts(getattr(value, f.name)):
                yield part
        yield ");"
    elif isinstance(value, (list, tuple)):
        yield f"{type(value).__name__}["
        for item in value:
            for part in _canonical_parts(item):
                yield part
        yield "];"
    elif isinstance(value, (set, frozenset)):
        yield "set["
        for token in sorted(
            "".join(_canonical_parts(item)) for item in value
        ):
            yield token
        yield "];"
    elif isinstance(value, dict):
        yield "dict{"
        entries = sorted(
            (
                "".join(_canonical_parts(key)),
                "".join(_canonical_parts(val)),
            )
            for key, val in value.items()
        )
        for key_token, val_token in entries:
            yield key_token
            yield "->"
            yield val_token
        yield "};"
    else:
        # last resort for opaque-but-picklable values: the pickle bytes.
        # Stable for a fixed code version (which the fingerprint already
        # includes), which is the only validity window the cache claims.
        blob = pickle.dumps(value, protocol=4)
        yield f"pickle:{type(value).__qualname__}:"
        yield hashlib.sha256(blob).hexdigest()
        yield ";"


def canonical_params(shard: Shard) -> str:
    """The canonical encoding of a shard's parameter mapping."""
    return "".join(_canonical_parts(dict(shard.params)))


def code_version(package_root: Optional[str] = None) -> str:
    """Hash of every ``.py`` source file under the ``repro`` package.

    Deliberately coarse: a shard's result can depend on any module the
    callable transitively imports, so the only *safe* invalidation unit
    is the whole tree.  The walk is a few milliseconds and the digest is
    memoized per process.
    """
    global _CODE_VERSION_CACHE
    if package_root is None:
        if _CODE_VERSION_CACHE is not None:
            return _CODE_VERSION_CACHE
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    else:
        root = package_root
    digest = hashlib.sha256()
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                digest.update(fh.read())
    result = digest.hexdigest()
    if package_root is None:
        _CODE_VERSION_CACHE = result
    return result


def shard_fingerprint(shard: Shard, version: Optional[str] = None) -> str:
    """The shard's content address: hash(fn path, params, code version)."""
    if version is None:
        version = code_version()
    digest = hashlib.sha256()
    digest.update(shard.fn.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_params(shard).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(version.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Disk-persisted map from shard fingerprint to shard value.

    Entries live at ``<root>/<fp[:2]>/<fp>.pkl`` (two-level fan-out so
    big campaigns do not pile thousands of files into one directory);
    writes go through a temp file + ``os.replace`` so a killed run can
    never leave a half-written entry that later reads as a result.
    """

    def __init__(self, root: str, version: Optional[str] = None) -> None:
        self.root = root
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, fingerprint: str) -> str:
        return os.path.join(
            self.root, fingerprint[:2], fingerprint + ".pkl"
        )

    def lookup(self, shard: Shard) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        A corrupt, truncated, or unreadable entry is a miss -- the cache
        degrades to re-execution, never to failure.
        """
        path = self._path(shard_fingerprint(shard, self.version))
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            value = entry["value"]
        except (OSError, pickle.UnpicklingError, KeyError, EOFError,
                AttributeError, ImportError, IndexError):
            self.misses += 1
            return (False, None)
        self.hits += 1
        return (True, value)

    def store(self, shard: Shard, value: Any) -> None:
        """Persist one ok result; failures to write are swallowed."""
        path = self._path(shard_fingerprint(shard, self.version))
        entry = {"key": shard.key, "fn": shard.fn, "value": value}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(
                        entry, fh, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError):
            return
        self.stores += 1
