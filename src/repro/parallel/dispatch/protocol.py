"""The dispatch wire format: length-prefixed JSON frames.

Every message between coordinator and worker is one *frame*: a 4-byte
big-endian length followed by that many bytes of UTF-8 JSON.  The JSON
envelope carries the message ``type`` plus plain-value fields; shard
parameters and result values -- which are arbitrary picklable objects,
not JSON -- travel base64-encoded pickle bytes in a ``payload`` field.
Keeping the envelope JSON (rather than raw pickle frames) means a
foreign tool, an SSH tunnel health check, or a future non-Python
worker can parse the control plane without a pickle VM; only the two
payload fields need one.

Message types (see docs/PARALLEL.md for the full exchange):

=============  =========  ==================================================
type           direction  fields
=============  =========  ==================================================
``register``   w -> c     ``node`` (id), ``pid``
``welcome``    c -> w     ``heartbeat_s`` (interval the worker must beat at)
``heartbeat``  w -> c     ``node``
``assign``     c -> w     ``seq``, ``index``, ``key``, ``fn``, ``payload``
                          (pickled params dict)
``result``     w -> c     ``seq``, ``index``, ``status`` ("ok"|"raised"),
                          ``payload`` (pickled value) or ``error`` (string)
``shutdown``   c -> w     --
=============  =========  ==================================================

A frame that cannot be parsed, or a connection that closes mid-frame,
is a *node failure*, never a poisoned run: the coordinator treats the
connection as dead and reassigns the node's outstanding work (the kill
tests exercise exactly the mid-upload case).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict, List, Optional

#: frame length prefix: 4-byte unsigned big-endian
_LEN = struct.Struct(">I")

#: refuse frames past this size -- a corrupt length prefix must not
#: make the receiver try to allocate gigabytes
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame or envelope (treated as node failure)."""


def encode_payload(value: Any) -> str:
    """Pickle ``value`` and wrap it for the JSON envelope."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def pack_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one envelope to its on-wire bytes."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(body)) + body


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one frame; raises ``OSError`` if the peer is gone."""
    sock.sendall(pack_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, ``ProtocolError`` on EOF mid-frame."""
    chunks: List[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ProtocolError` for truncated or malformed frames and
    lets socket errors propagate -- both mean "this node is gone".
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed after length prefix")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("envelope must be an object with a 'type'")
    return message
