"""The worker node: connect, register, heartbeat, execute, repeat.

A worker is one process that connects to a coordinator socket, speaks
the :mod:`~repro.parallel.dispatch.protocol` frames, and executes
shards exactly the way the local backend does -- through
:func:`~repro.parallel.shard.execute_shard`, with application
exceptions caught and shipped back as ``raised`` results so a bad
shard never takes the node down.  The coordinator normally spawns
workers as subprocesses on the same host, but nothing here assumes
that: ``python -m repro.parallel.dispatch.worker --connect host:port``
(or ``repro dispatch worker``) attaches any reachable machine as a
node, which is the SSH-host generalization path.

Heartbeats run on a daemon thread at the interval the coordinator's
``welcome`` frame dictates; the socket is shared between the heartbeat
thread and the main loop, so every send holds a lock (frames must
never interleave mid-write).

**Chaos hooks.**  The kill tests and the ``dispatch-chaos`` CI job
need workers that die at *seeded, reproducible* points.  ``--chaos``
takes a comma-separated spec; each key fires once, at the Nth event of
its kind, and kills the process with ``os._exit`` (no cleanup, no
goodbye -- exactly what a kernel OOM-kill or a yanked cable looks like
to the coordinator):

- ``die-before-result:N``  execute the Nth assigned shard, then die
  without sending the result (work lost mid-shard);
- ``die-mid-upload:N``     die halfway through sending the Nth result
  frame (tests the truncated-frame path);
- ``die-after-results:N``  die right after successfully sending the
  Nth result (the coordinator has the value; the node just vanishes);
- ``die-at-heartbeat:N``   die instead of sending the Nth heartbeat;
- ``freeze-at-heartbeat:N``  stop heartbeating (but keep the socket
  open and keep working) from the Nth beat on -- the deadline-eviction
  path, not the dead-socket path.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.parallel.dispatch.protocol import (
    ProtocolError,
    encode_payload,
    decode_payload,
    pack_frame,
    recv_frame,
    send_frame,
)
from repro.parallel.shard import Shard, execute_shard

#: exit codes for chaos deaths (distinct so tests can tell them apart)
CHAOS_EXIT = 23


@dataclass
class WorkerChaos:
    """Parsed ``--chaos`` spec; 0 means "never fire"."""

    die_before_result: int = 0
    die_mid_upload: int = 0
    die_after_results: int = 0
    die_at_heartbeat: int = 0
    freeze_at_heartbeat: int = 0


def parse_chaos(spec: str) -> WorkerChaos:
    """Parse ``key:N[,key:N...]`` into a :class:`WorkerChaos`."""
    chaos = WorkerChaos()
    if not spec:
        return chaos
    keys = {
        "die-before-result": "die_before_result",
        "die-mid-upload": "die_mid_upload",
        "die-after-results": "die_after_results",
        "die-at-heartbeat": "die_at_heartbeat",
        "freeze-at-heartbeat": "freeze_at_heartbeat",
    }
    for part in spec.split(","):
        key, sep, count = part.partition(":")
        if not sep or key not in keys:
            raise ValueError(f"bad chaos spec {part!r}")
        setattr(chaos, keys[key], int(count))
    return chaos


class Worker:
    """One worker node's lifetime on an established connection."""

    def __init__(
        self,
        sock: socket.socket,
        node_id: str,
        chaos: Optional[WorkerChaos] = None,
    ) -> None:
        self.sock = sock
        self.node_id = node_id
        self.chaos = chaos or WorkerChaos()
        self._send_lock = threading.Lock()
        self._results_sent = 0
        self._beats_sent = 0
        self._stop = threading.Event()

    # -- plumbing ----------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        with self._send_lock:
            send_frame(self.sock, message)

    def _die(self) -> None:
        """A chaos death: no cleanup, no goodbye, no flush."""
        os._exit(CHAOS_EXIT)

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            self._beats_sent += 1
            if self.chaos.die_at_heartbeat == self._beats_sent:
                self._die()
            if (
                self.chaos.freeze_at_heartbeat
                and self._beats_sent >= self.chaos.freeze_at_heartbeat
            ):
                continue  # silent: the eviction deadline must fire
            try:
                self._send({"type": "heartbeat", "node": self.node_id})
            except OSError:
                return  # coordinator is gone; main loop will notice

    # -- the main loop -----------------------------------------------------

    def _send_result(self, message: Dict[str, Any]) -> None:
        if self.chaos.die_mid_upload == self._results_sent + 1:
            # ship only half the frame, then die: the coordinator must
            # treat the truncated frame as node death, not as a result
            blob = pack_frame(message)
            with self._send_lock:
                self.sock.sendall(blob[: max(1, len(blob) // 2)])
            self._die()
        self._send(message)
        self._results_sent += 1
        if self.chaos.die_after_results == self._results_sent:
            self._die()

    def _execute(self, message: Dict[str, Any]) -> None:
        shard = Shard(
            index=int(message["index"]),
            key=str(message["key"]),
            fn=str(message["fn"]),
            params=decode_payload(str(message["payload"])),
        )
        try:
            value = execute_shard(shard)
        except Exception as exc:
            self._send_result(
                {
                    "type": "result",
                    "seq": message["seq"],
                    "index": shard.index,
                    "status": "raised",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        if self.chaos.die_before_result == self._results_sent + 1:
            self._die()
        self._send_result(
            {
                "type": "result",
                "seq": message["seq"],
                "index": shard.index,
                "status": "ok",
                "payload": encode_payload(value),
            }
        )

    def run(self) -> int:
        """Register, then serve assignments until shutdown/EOF."""
        self._send(
            {"type": "register", "node": self.node_id, "pid": os.getpid()}
        )
        welcome = recv_frame(self.sock)
        if welcome is None or welcome.get("type") != "welcome":
            return 1
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(float(welcome["heartbeat_s"]),),
            daemon=True,
        )
        beat.start()
        try:
            while True:
                try:
                    message = recv_frame(self.sock)
                except (ProtocolError, OSError):
                    return 1
                if message is None or message["type"] == "shutdown":
                    return 0
                if message["type"] == "assign":
                    self._execute(message)
        finally:
            self._stop.set()


def run_worker(
    host: str, port: int, node_id: str, chaos: Optional[WorkerChaos] = None
) -> int:
    """Connect to a coordinator and serve until it shuts us down."""
    sock = socket.create_connection((host, port))
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Worker(sock, node_id, chaos).run()
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dispatch-worker",
        description="attach this process to a dispatch coordinator "
        "as a worker node (docs/PARALLEL.md)",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address, e.g. 127.0.0.1:49200",
    )
    parser.add_argument(
        "--node-id", default=f"worker-{os.getpid()}",
        help="node id to register as (default: worker-<pid>)",
    )
    parser.add_argument(
        "--chaos", default="",
        help="testing only: seeded kill points, e.g. "
        "'die-after-results:1' (see module docs)",
    )
    args = parser.parse_args(argv)
    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host:
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    return run_worker(
        host, int(port_text), args.node_id, parse_chaos(args.chaos)
    )


if __name__ == "__main__":
    sys.exit(main())
