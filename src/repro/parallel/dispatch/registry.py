"""Node registration and heartbeat liveness.

The registry is the coordinator's view of the cluster, in the spirit of
the global-scheduler state of the ray scheduler prototype: every worker
that completes the ``register`` handshake gets a :class:`NodeState`
tracking its last heartbeat and current assignment.  Liveness is
deadline-based: a node that has not been heard from (heartbeat *or*
result -- results prove liveness too) within
``heartbeat_s * liveness_factor`` seconds is evicted, and its
outstanding work is reassigned by the coordinator.

Ordering discipline: the node map is keyed by node id, and *when* nodes
registered depends on host timing -- so raw iteration over it would let
wall-clock racing leak into assignment order.  Every accessor here
returns nodes sorted by id, and the determinism lint's DT007 flags any
unordered iteration over a ``.nodes`` map in this package.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.parallel.dispatch.clock import Clock, monotonic_clock


@dataclass
class NodeState:
    """One registered worker node."""

    node_id: str
    #: the coordinator-side connection to the node (sends are guarded by
    #: the coordinator; the reader thread owns receives)
    conn: socket.socket = field(repr=False)
    pid: int = 0
    registered_at: float = 0.0
    last_heard: float = 0.0
    #: sequence numbers of assignments currently on this node
    outstanding: List[int] = field(default_factory=list)
    #: results this node has delivered (for reports and tests)
    results: int = 0
    #: True for workers the coordinator spawned itself (it may respawn
    #: them); False for externally attached workers (SSH hosts)
    spawned: bool = True

    @property
    def idle(self) -> bool:
        return not self.outstanding


class NodeRegistry:
    """Registered nodes, their liveness, and eviction deadlines."""

    def __init__(
        self,
        heartbeat_s: float,
        liveness_factor: float = 4.0,
        clock: Clock = monotonic_clock,
    ) -> None:
        if heartbeat_s <= 0.0:
            raise ValueError("heartbeat interval must be positive")
        if liveness_factor < 1.0:
            raise ValueError("liveness factor must be >= 1")
        self.heartbeat_s = heartbeat_s
        self.deadline_s = heartbeat_s * liveness_factor
        self._clock = clock
        self.nodes: Dict[str, NodeState] = {}
        #: nodes evicted or departed, kept for the run report
        self.departed: Dict[str, str] = {}

    # -- membership --------------------------------------------------------

    def register(
        self,
        node_id: str,
        conn: socket.socket,
        pid: int = 0,
        spawned: bool = True,
    ) -> NodeState:
        """Admit a node; re-registration of a live id is a failure."""
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id!r} already registered")
        now = self._clock()
        state = NodeState(
            node_id=node_id,
            conn=conn,
            pid=pid,
            registered_at=now,
            last_heard=now,
            spawned=spawned,
        )
        self.nodes[node_id] = state
        return state

    def evict(self, node_id: str, reason: str) -> Optional[NodeState]:
        """Remove a node (death, eviction, shutdown); returns its final
        state so the coordinator can requeue its outstanding work."""
        state = self.nodes.pop(node_id, None)
        if state is not None:
            self.departed[node_id] = reason
        return state

    # -- liveness ----------------------------------------------------------

    def heard_from(self, node_id: str) -> bool:
        """Record proof of life (heartbeat or delivered result)."""
        state = self.nodes.get(node_id)
        if state is None:
            return False
        state.last_heard = self._clock()
        return True

    def expired(self) -> List[NodeState]:
        """Nodes past their liveness deadline, sorted by id.

        The caller decides what eviction means (close the socket,
        requeue work); the registry only judges the deadline.
        """
        now = self._clock()
        return [
            state
            for state in self.sorted_nodes()
            if now - state.last_heard > self.deadline_s
        ]

    # -- ordered views (never iterate ``.nodes`` raw: DT007) ---------------

    def sorted_nodes(self) -> List[NodeState]:
        """Every live node, sorted by node id."""
        return [self.nodes[node_id] for node_id in sorted(self.nodes)]

    def idle_nodes(self) -> List[NodeState]:
        """Live nodes with no outstanding assignment, sorted by id."""
        return [state for state in self.sorted_nodes() if state.idle]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes
