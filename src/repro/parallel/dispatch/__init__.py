"""``repro.parallel.dispatch``: the fault-tolerant cluster backend.

This package is the scale-out path for every sweep in the repository:
it executes the same :class:`~repro.parallel.shard.Shard` cells the
local process pool runs, but on a registry of *worker nodes* speaking a
small length-prefixed JSON protocol over sockets -- subprocesses today,
SSH hosts tomorrow (a remote worker is just
``python -m repro.parallel.dispatch.worker --connect host:port``).

The robustness contract mirrors the paper's: dispatch-level chaos --
a node dying mid-shard, mid-heartbeat, or halfway through uploading a
result -- may cost time, but it can never change the merged result,
which stays bit-identical to a serial run (asserted by
``tests/parallel/test_dispatch_chaos.py`` and the ``dispatch-chaos``
CI job).  The moving parts:

- :mod:`~repro.parallel.dispatch.protocol` -- the framed JSON wire
  format (pickled payloads ride base64-encoded inside the envelope);
- :mod:`~repro.parallel.dispatch.registry` -- node registration,
  heartbeat liveness, deadline-based eviction;
- :mod:`~repro.parallel.dispatch.backoff` -- decorrelated-jitter
  exponential backoff for shard retries;
- :mod:`~repro.parallel.dispatch.cache` -- the content-addressed shard
  result cache (fingerprint = hash of callable path, canonical params,
  code version) that makes killed campaigns resumable;
- :mod:`~repro.parallel.dispatch.worker` -- the worker main loop (and
  its seeded chaos hooks, used by the kill tests);
- :mod:`~repro.parallel.dispatch.coordinator` -- the scheduler: assign,
  retry with backoff, steal from slow nodes, evict dead ones, and fall
  back to the local pool when no workers register.

Select it with ``run_shards(..., backend="cluster")`` or the CLI's
``--backend cluster`` (docs/PARALLEL.md).
"""

from repro.parallel.dispatch.backoff import DecorrelatedJitter
from repro.parallel.dispatch.cache import (
    ResultCache,
    code_version,
    shard_fingerprint,
)
from repro.parallel.dispatch.coordinator import ClusterConfig, run_cluster
from repro.parallel.dispatch.registry import NodeRegistry, NodeState

__all__ = [
    "ClusterConfig",
    "DecorrelatedJitter",
    "NodeRegistry",
    "NodeState",
    "ResultCache",
    "code_version",
    "run_cluster",
    "shard_fingerprint",
]
