"""The dispatch coordinator: assign, retry, steal, evict, degrade.

``run_cluster`` executes a batch of shards on a registry of worker
nodes.  It is the cluster counterpart of the local pool in
:mod:`repro.parallel.engine`, and it honours the same two contracts:

- **determinism** -- shards are pure functions of ``(fn, params)``, so
  *which* node runs a shard, in *what* order, after *how many* retries
  can never change the merged output (sorted by shard index upstream);
  scheduling here is free to react to wall-clock events;
- **attempt accounting** -- every terminated execution charges the
  shard one attempt (a node death also charges a crash), mirroring the
  local backend, so ``ShardOutcome`` reads the same whichever backend
  produced it.

Scheduling model (one thread owns all state; socket reader threads only
enqueue events):

- **liveness**: nodes must heartbeat; a node silent past
  ``heartbeat_s * liveness_factor`` is evicted and its work requeued
  (a delivered result also proves liveness);
- **retry + backoff**: a shard whose execution *raised* is requeued
  with a decorrelated-jitter delay (``backoff_base_s``..``backoff_cap_s``)
  so correlated failures do not stampede; a shard stranded by a node
  *death* requeues immediately (matching the local backend's
  crash-retry semantics);
- **work-stealing**: an assignment outstanding longer than
  ``steal_after_s`` is speculatively duplicated onto an idle node
  (up to ``max_duplicates`` concurrent copies); the first result wins
  and later duplicates are discarded -- purity makes duplicates safe;
- **hard timeout**: an assignment outstanding longer than
  ``shard_timeout_s`` declares its node stuck; the node is evicted
  (and killed, if we spawned it) and the shard requeued;
- **graceful degradation**: if no node registers within
  ``register_timeout_s``, or every node dies with the respawn budget
  exhausted, the unfinished shards are handed back to the caller, and
  :func:`~repro.parallel.engine.run_shards` finishes them on the local
  process pool -- a cluster outage degrades to PR 5 behaviour, never to
  a failed run.
"""

from __future__ import annotations

import logging
import os
import queue
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.parallel.dispatch.backoff import DecorrelatedJitter
from repro.parallel.dispatch.clock import Clock, monotonic_clock
from repro.parallel.dispatch.protocol import (
    ProtocolError,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)
from repro.parallel.dispatch.registry import NodeRegistry, NodeState
from repro.parallel.shard import Shard

logger = logging.getLogger("repro.parallel.dispatch")


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one cluster run (defaults suit same-host workers)."""

    #: worker subprocesses to spawn; ``None`` means "the jobs value",
    #: 0 means "spawn none -- external workers will attach"
    workers: Optional[int] = None
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick
    heartbeat_s: float = 0.5
    liveness_factor: float = 6.0
    register_timeout_s: float = 20.0
    #: outstanding longer than this: duplicate onto an idle node
    steal_after_s: float = 30.0
    #: outstanding longer than this: the node is stuck -- evict it
    shard_timeout_s: float = 600.0
    max_duplicates: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int = 0
    #: dead spawned workers replaced up to this many times per run
    max_respawns: int = 2
    #: main-loop wakeup granularity
    tick_s: float = 0.05
    #: testing/CI: give the first N spawned workers a
    #: ``die-after-results:1`` chaos spec (one injected kill each)
    chaos_kill: int = 0
    #: testing: explicit per-node chaos specs (overrides ``chaos_kill``)
    worker_chaos: Mapping[str, str] = field(default_factory=dict)


@dataclass
class _Assignment:
    seq: int
    shard: Shard
    node_id: str
    started_at: float


@dataclass
class _Event:
    kind: str  # "register" | "heartbeat" | "result" | "gone"
    node_id: str
    message: Dict[str, Any]
    conn: Optional[socket.socket] = None


class _RunSink(Protocol):
    """The slice of the engine's per-run bookkeeping the coordinator
    drives (implemented by ``repro.parallel.engine._Run``); typed as a
    structural protocol so the two modules stay import-cycle free."""

    def charge(self, shard: Shard, crashed: bool = False) -> int: ...

    def exhausted(self, shard: Shard) -> bool: ...

    def record_error(self, shard: Shard, message: str) -> None: ...

    def finalize(
        self,
        shard: Shard,
        status: str,
        value: Any,
        error: str,
        node: str = "",
        cached: bool = False,
    ) -> None: ...

    def is_finalized(self, shard: Shard) -> bool: ...


class ClusterDispatcher:
    """One ``run_cluster`` invocation's scheduler state."""

    def __init__(
        self,
        shards: Sequence[Shard],
        run: _RunSink,
        jobs: int,
        config: ClusterConfig,
        clock: Clock = monotonic_clock,
    ) -> None:
        self.shards = list(shards)
        self.run = run
        self.config = config
        self.workers = config.workers if config.workers is not None else jobs
        self._clock = clock
        self.registry = NodeRegistry(
            heartbeat_s=config.heartbeat_s,
            liveness_factor=config.liveness_factor,
            clock=clock,
        )
        self._backoff = DecorrelatedJitter(
            config.backoff_base_s, config.backoff_cap_s, config.backoff_seed
        )
        self._events: "queue.Queue[_Event]" = queue.Queue()
        #: (ready_time, shard) cells awaiting (re)assignment
        self._pending: List[Tuple[float, Shard]] = []
        #: live assignments by shard index (duplicates from stealing)
        self._outstanding: Dict[int, List[_Assignment]] = {}
        self._by_seq: Dict[int, _Assignment] = {}
        self._seq = 0
        self._procs: Dict[str, "subprocess.Popen[bytes]"] = {}
        self._spawn_ordinal = 0
        self._respawns_used = 0
        self._ever_registered = False
        self._listener: Optional[socket.socket] = None
        self._addr: Tuple[str, int] = ("", 0)
        self._chaos_by_node: Dict[str, str] = dict(config.worker_chaos)
        if config.chaos_kill and not self._chaos_by_node:
            self._chaos_by_node = {
                f"node{i}": "die-after-results:1"
                for i in range(config.chaos_kill)
            }

    # -- listener / readers ------------------------------------------------

    def _start_listener(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(16)
        self._listener = listener
        threading.Thread(target=self._accept_loop, daemon=True).start()
        host, port = listener.getsockname()[:2]
        return str(host), int(port)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: run is over
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            threading.Thread(
                target=self._reader, args=(conn,), daemon=True
            ).start()

    def _reader(self, conn: socket.socket) -> None:
        """Per-connection thread: frames in, events out."""
        try:
            first = recv_frame(conn)
        except (ProtocolError, OSError):
            first = None
        if first is None or first.get("type") != "register":
            try:
                conn.close()
            except OSError:
                pass
            return
        node_id = str(first.get("node", ""))
        self._events.put(_Event("register", node_id, first, conn=conn))
        while True:
            try:
                message = recv_frame(conn)
            except (ProtocolError, OSError):
                break
            if message is None:
                break
            self._events.put(
                _Event(str(message["type"]), node_id, message)
            )
        self._events.put(_Event("gone", node_id, {}))

    # -- worker subprocesses -----------------------------------------------

    def _spawn_worker(self, host: str, port: int) -> None:
        node_id = f"node{self._spawn_ordinal}"
        self._spawn_ordinal += 1
        cmd = [
            sys.executable,
            "-m",
            "repro.parallel.dispatch.worker",
            "--connect",
            f"{host}:{port}",
            "--node-id",
            node_id,
        ]
        chaos = self._chaos_by_node.get(node_id, "")
        if chaos:
            cmd += ["--chaos", chaos]
        env = dict(os.environ)
        # make sure workers resolve the same `repro` this process runs
        import repro

        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._procs[node_id] = subprocess.Popen(cmd, env=env)

    def _respawn_if_budgeted(self, host: str, port: int) -> None:
        if self._respawns_used >= self.config.max_respawns:
            return
        if not self._unfinished():
            return
        self._respawns_used += 1
        self._spawn_worker(host, port)

    # -- scheduling --------------------------------------------------------

    def _unfinished(self) -> List[Shard]:
        return [
            shard
            for shard in self.shards
            if not self.run.is_finalized(shard)
        ]

    def _send_to(self, state: NodeState, message: Dict[str, Any]) -> bool:
        try:
            send_frame(state.conn, message)
            return True
        except OSError:
            self._handle_gone(state.node_id, "send failed")
            return False

    def _assign(self, state: NodeState, shard: Shard) -> bool:
        self._seq += 1
        seq = self._seq
        ok = self._send_to(
            state,
            {
                "type": "assign",
                "seq": seq,
                "index": shard.index,
                "key": shard.key,
                "fn": shard.fn,
                "payload": encode_payload(dict(shard.params)),
            },
        )
        if not ok:
            return False
        assignment = _Assignment(seq, shard, state.node_id, self._clock())
        state.outstanding.append(seq)
        self._outstanding.setdefault(shard.index, []).append(assignment)
        self._by_seq[seq] = assignment
        return True

    def _drop_shard_assignments(self, index: int) -> None:
        """Forget every live assignment of a finalized shard.  The seqs
        stay in their nodes' ``outstanding`` lists until the node
        actually reports (or dies), so a node still chewing a stale
        duplicate is not considered idle."""
        for assignment in self._outstanding.pop(index, []):
            self._by_seq.pop(assignment.seq, None)

    def _requeue(self, shard: Shard, delay_s: float) -> None:
        self._pending.append((self._clock() + delay_s, shard))

    def _handle_register(self, event: _Event) -> None:
        assert event.conn is not None
        if event.node_id in self.registry or not event.node_id:
            logger.warning(
                "rejecting duplicate/empty node id %r", event.node_id
            )
            try:
                event.conn.close()
            except OSError:
                pass
            return
        state = self.registry.register(
            event.node_id,
            event.conn,
            pid=int(event.message.get("pid", 0)),
            spawned=event.node_id in self._procs,
        )
        self._ever_registered = True
        self._send_to(
            state,
            {"type": "welcome", "heartbeat_s": self.config.heartbeat_s},
        )

    def _handle_result(self, event: _Event) -> None:
        message = event.message
        seq = int(message["seq"])
        state = self.registry.nodes.get(event.node_id)
        if state is not None:
            self.registry.heard_from(event.node_id)
            if seq in state.outstanding:
                state.outstanding.remove(seq)
            state.results += 1
        assignment = self._by_seq.pop(seq, None)
        if assignment is None:
            return  # stale duplicate of an already-settled shard
        shard = assignment.shard
        self._outstanding[shard.index] = [
            a for a in self._outstanding.get(shard.index, [])
            if a.seq != seq
        ]
        if self.run.is_finalized(shard):
            return
        self.run.charge(shard)
        if message.get("status") == "ok":
            self._drop_shard_assignments(shard.index)
            self._backoff.reset(shard.index)
            self.run.finalize(
                shard,
                "ok",
                decode_payload(str(message["payload"])),
                "",
                node=event.node_id,
            )
            return
        error = str(message.get("error", "shard raised"))
        self.run.record_error(shard, f"[{event.node_id}] {error}")
        if self.run.exhausted(shard):
            self._drop_shard_assignments(shard.index)
            self.run.finalize(
                shard, "failed", None, error, node=event.node_id
            )
        elif not self._outstanding.get(shard.index):
            # no duplicate still running: retry after a jittered delay
            self._requeue(shard, self._backoff.next_delay(shard.index))

    def _handle_gone(self, node_id: str, reason: str) -> None:
        state = self.registry.evict(node_id, reason)
        if state is None:
            return
        logger.info("node %s left the cluster: %s", node_id, reason)
        try:
            state.conn.close()
        except OSError:
            pass
        proc = self._procs.get(node_id)
        if proc is not None and proc.poll() is None:
            proc.kill()
        for seq in list(state.outstanding):
            assignment = self._by_seq.pop(seq, None)
            if assignment is None:
                continue  # stale duplicate; shard already settled
            shard = assignment.shard
            survivors = [
                a for a in self._outstanding.get(shard.index, [])
                if a.seq != seq
            ]
            self._outstanding[shard.index] = survivors
            if self.run.is_finalized(shard) or survivors:
                continue  # another copy is still running
            self.run.charge(shard, crashed=True)
            detail = f"worker node {node_id} died ({reason})"
            self.run.record_error(shard, detail)
            if self.run.exhausted(shard):
                self.run.finalize(shard, "failed", None, detail,
                                  node=node_id)
            else:
                self._requeue(shard, 0.0)
        if state.spawned:
            host, port = self._addr
            self._respawn_if_budgeted(host, port)

    def _handle_event(self, event: _Event) -> None:
        if event.kind == "register":
            self._handle_register(event)
        elif event.kind == "heartbeat":
            self.registry.heard_from(event.node_id)
        elif event.kind == "result":
            self._handle_result(event)
        elif event.kind == "gone":
            self._handle_gone(event.node_id, "connection closed")
        # unknown frame types are ignored: forward-compatible protocol

    def _check_timeouts(self) -> None:
        now = self._clock()
        # hard per-shard timeout: the node is stuck, evict it
        stuck = sorted(
            {
                a.node_id
                for assignments in self._outstanding.values()
                for a in assignments
                if now - a.started_at > self.config.shard_timeout_s
            }
        )
        for node_id in stuck:
            self._handle_gone(node_id, "shard timeout")
        # liveness deadlines
        for state in self.registry.expired():
            self._handle_gone(state.node_id, "missed heartbeat deadline")

    def _steal(self) -> None:
        """Duplicate slow assignments onto idle nodes (speculation)."""
        idle = self.registry.idle_nodes()
        if not idle:
            return
        now = self._clock()
        for index in sorted(self._outstanding):
            if not idle:
                return
            assignments = self._outstanding[index]
            if not assignments or len(assignments) >= self.config.max_duplicates:
                continue
            age = now - min(a.started_at for a in assignments)
            if age <= self.config.steal_after_s:
                continue
            busy = {a.node_id for a in assignments}
            thief = next(
                (n for n in idle if n.node_id not in busy), None
            )
            if thief is None:
                continue
            idle = [n for n in idle if n.node_id != thief.node_id]
            logger.info(
                "stealing %s (outstanding %.1fs) onto %s",
                assignments[0].shard.key, age, thief.node_id,
            )
            self._assign(thief, assignments[0].shard)

    def _dispatch_pending(self) -> None:
        now = self._clock()
        ready = sorted(
            (shard.index, ready_at, shard)
            for ready_at, shard in self._pending
            if ready_at <= now
        )
        if not ready:
            return
        idle = self.registry.idle_nodes()
        assigned_indices: List[int] = []
        for (index, _ready_at, shard), state in zip(ready, idle):
            if self._assign(state, shard):
                assigned_indices.append(index)
        if assigned_indices:
            taken = set(assigned_indices)
            self._pending = [
                (ready_at, shard)
                for ready_at, shard in self._pending
                if shard.index not in taken
            ]

    def _poll_spawned(self) -> None:
        """Spot worker processes that died before ever registering."""
        for node_id in sorted(self._procs):
            proc = self._procs[node_id]
            if proc.poll() is None:
                continue
            if node_id in self.registry:
                continue  # reader will deliver "gone" when the socket drops
            if node_id in self.registry.departed:
                continue
            self.registry.departed[node_id] = (
                f"spawn exited with code {proc.returncode} before register"
            )
            host, port = self._addr
            self._respawn_if_budgeted(host, port)

    # -- the run -----------------------------------------------------------

    def execute(self) -> List[Shard]:
        """Run until every shard settles or the cluster degrades.

        Returns the shards that were *not* finalized -- empty on a
        normal run; the whole batch when no worker ever registered; the
        tail of the batch when the cluster died mid-run.  The engine
        finishes the returned shards on the local pool.
        """
        host, port = self._start_listener()
        self._addr = (host, port)
        started = self._clock()
        self._pending = [(started, shard) for shard in self.shards]
        for _ in range(self.workers):
            self._spawn_worker(host, port)
        try:
            while self._unfinished():
                try:
                    event: Optional[_Event] = self._events.get(
                        timeout=self.config.tick_s
                    )
                except queue.Empty:
                    event = None
                while event is not None:
                    self._handle_event(event)
                    try:
                        event = self._events.get_nowait()
                    except queue.Empty:
                        event = None
                self._poll_spawned()
                self._check_timeouts()
                self._steal()
                self._dispatch_pending()
                if not self.registry:
                    if not self._ever_registered:
                        if (
                            self._clock() - started
                            > self.config.register_timeout_s
                        ):
                            logger.warning(
                                "no worker registered within %.1fs; "
                                "degrading to the local pool",
                                self.config.register_timeout_s,
                            )
                            break
                        if (
                            self.workers == 0
                            and not self._procs
                            and self.config.port == 0
                        ):
                            # an ephemeral port nobody was told about:
                            # nothing can ever register; don't wait.
                            # (an explicit port means external workers
                            # may dial in -- honour register_timeout_s)
                            logger.warning(
                                "cluster backend with workers=0 and no "
                                "external nodes; degrading to the local "
                                "pool"
                            )
                            break
                    elif (
                        self._respawns_used >= self.config.max_respawns
                        and all(
                            proc.poll() is not None
                            for proc in self._procs.values()
                        )
                    ):
                        logger.warning(
                            "every worker died and the respawn budget is "
                            "exhausted; degrading to the local pool"
                        )
                        break
        finally:
            self._shutdown()
        return self._unfinished()

    def _shutdown(self) -> None:
        for state in self.registry.sorted_nodes():
            try:
                send_frame(state.conn, {"type": "shutdown"})
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for node_id in sorted(self._procs):
            proc = self._procs[node_id]
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    pass
        for state in self.registry.sorted_nodes():
            try:
                state.conn.close()
            except OSError:
                pass


def run_cluster(
    shards: Sequence[Shard],
    run: _RunSink,
    jobs: int,
    config: Optional[ClusterConfig] = None,
    clock: Clock = monotonic_clock,
) -> List[Shard]:
    """Execute ``shards`` on the cluster backend; returns the leftovers
    the caller must finish locally (graceful degradation)."""
    dispatcher = ClusterDispatcher(
        shards, run, jobs=jobs, config=config or ClusterConfig(),
        clock=clock,
    )
    return dispatcher.execute()
