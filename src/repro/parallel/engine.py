"""The shard execution engine with a deterministic merge.

``run_shards`` executes a list of :class:`~repro.parallel.shard.Shard`
cells and returns one :class:`~repro.parallel.shard.ShardOutcome` per
shard, **sorted by shard index** -- never by completion order -- so the
caller sees exactly what a serial loop would have produced.  Three
execution paths share that contract:

- ``backend="local", jobs=1`` -- inline, in index order;
- ``backend="local", jobs>1`` -- a process pool on this host;
- ``backend="cluster"``      -- the fault-tolerant dispatch layer
  (:mod:`repro.parallel.dispatch`): socket worker nodes with heartbeat
  liveness, per-shard retry with decorrelated-jitter backoff,
  work-stealing from slow nodes, and graceful degradation back to the
  local pool when no workers register or the cluster dies mid-run.

Orthogonally, ``cache=`` plugs in a content-addressed result cache
(:class:`~repro.parallel.dispatch.cache.ResultCache`): shards whose
fingerprint (callable path, canonical params, code version) already has
a stored result are *not executed at all* -- their outcomes come back
``cached=True`` with ``attempts == 0`` -- and fresh ok results are
persisted, which is what makes a killed campaign resumable.

Failure semantics (see ``docs/PARALLEL.md``):

- a shard that raises inside the worker is reported back as a value
  (the worker wrapper catches it), so an exception never poisons the
  pool; the shard is retried up to ``retries`` more times, and every
  failed attempt's error is kept in ``ShardOutcome.history`` so crash
  reports are auditable;
- a worker *process* that dies (killed, segfaulted, ``os._exit``)
  breaks the pool; the engine rebuilds the pool and re-runs every shard
  whose result had not been collected, charging each an attempt --
  the pool cannot say which shard killed it, so the charge is
  conservative (the cluster backend *can* attribute deaths, and charges
  only the dead node's own shards);
- shards still failing after their retry budget become ``failed``
  outcomes; with ``partial=False`` (the default) the run then raises
  :class:`~repro.parallel.shard.ShardError` listing them, with
  ``partial=True`` the failed outcomes are returned alongside the good
  ones so the caller can report exactly which cells were lost;
- a ``progress`` callback that raises is *isolated*: the exception is
  logged once and swallowed, because a bad observer must never abort
  or skew a campaign.

Hung shards are the job of the *shards themselves*: simulation cells
run under the existing :class:`~repro.sim.driver.Watchdog` step
budgets, which turn a livelock into a typed diagnostic deterministically
(the same number of simulated events every run) -- a wall-clock kill
here would make results depend on host timing, which the determinism
lint (DT003) exists to prevent.  (The *cluster* backend does use wall
time, but only to judge node health -- never to decide results.)
"""

from __future__ import annotations

import logging
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.parallel.shard import Shard, ShardError, ShardOutcome, execute_shard

if TYPE_CHECKING:
    from repro.parallel.dispatch.cache import ResultCache
    from repro.parallel.dispatch.coordinator import ClusterConfig

logger = logging.getLogger("repro.parallel")

#: progress callback: (finished outcome, shards finished, shards total)
ProgressFn = Callable[[ShardOutcome, int, int], None]

#: the pluggable dispatch backends ``run_shards`` accepts
BACKENDS = ("local", "cluster")

#: worker payload statuses (in-worker exceptions travel as values so an
#: application error never breaks the pool)
_OK = "ok"
_RAISED = "raised"


def _worker(shard: Shard) -> Tuple[str, Any]:
    """Top-level worker entry point (must be picklable by name)."""
    try:
        return (_OK, execute_shard(shard))
    except Exception as exc:
        return (_RAISED, f"{type(exc).__name__}: {exc}")


def _check_shards(shards: Sequence[Shard]) -> List[Shard]:
    ordered = sorted(shards, key=lambda s: s.index)
    seen_index: Dict[int, str] = {}
    seen_key: Dict[str, int] = {}
    for shard in ordered:
        if shard.index in seen_index:
            raise ValueError(
                f"duplicate shard index {shard.index} "
                f"({seen_index[shard.index]!r} vs {shard.key!r})"
            )
        if shard.key in seen_key:
            raise ValueError(f"duplicate shard key {shard.key!r}")
        seen_index[shard.index] = shard.key
        seen_key[shard.key] = shard.index
    return ordered


class _Run:
    """Mutable bookkeeping for one ``run_shards`` invocation.

    Doubles as the sink the cluster coordinator drives (see the
    ``_RunSink`` protocol in ``repro.parallel.dispatch.coordinator``),
    so attempt accounting and progress reporting are identical across
    backends.
    """

    def __init__(
        self,
        total: int,
        retries: int,
        progress: Optional[ProgressFn],
    ) -> None:
        self.total = total
        self.retries = retries
        self.progress = progress
        self.outcomes: Dict[int, ShardOutcome] = {}
        self.attempts: Dict[int, int] = {}
        self.crashes: Dict[int, int] = {}
        self.errors: Dict[int, List[str]] = {}
        self.finished = 0
        self._progress_fault_logged = False

    def charge(self, shard: Shard, crashed: bool = False) -> int:
        """Record one attempt (and optionally one crash); returns the
        attempts used so far."""
        self.attempts[shard.index] = self.attempts.get(shard.index, 0) + 1
        if crashed:
            self.crashes[shard.index] = self.crashes.get(shard.index, 0) + 1
        return self.attempts[shard.index]

    def exhausted(self, shard: Shard) -> bool:
        return self.attempts.get(shard.index, 0) > self.retries

    def record_error(self, shard: Shard, message: str) -> None:
        """Append one failed attempt's error to the shard's audit
        trail (``ShardOutcome.history``)."""
        self.errors.setdefault(shard.index, []).append(message)

    def is_finalized(self, shard: Shard) -> bool:
        return shard.index in self.outcomes

    def _report(self, outcome: ShardOutcome) -> None:
        """Invoke the progress callback with faults isolated.

        A bad observer must never abort or skew a run: the first
        exception is logged (once per run), every exception is
        swallowed, and the callback keeps being invoked so a transient
        fault does not silence all later progress.
        """
        if self.progress is None:
            return
        try:
            self.progress(outcome, self.finished, self.total)
        except Exception:
            if not self._progress_fault_logged:
                self._progress_fault_logged = True
                logger.exception(
                    "progress callback raised on %s; callback errors "
                    "are isolated from the run (reported once)",
                    outcome.shard.key,
                )

    def finalize(
        self,
        shard: Shard,
        status: str,
        value: Any,
        error: str,
        node: str = "",
        cached: bool = False,
    ) -> None:
        outcome = ShardOutcome(
            shard=shard,
            status=status,
            value=value,
            error=error,
            attempts=self.attempts.get(shard.index, 1 if not cached else 0),
            worker_crashes=self.crashes.get(shard.index, 0),
            history=tuple(self.errors.get(shard.index, ())),
            node=node,
            cached=cached,
        )
        self.outcomes[shard.index] = outcome
        self.finished += 1
        self._report(outcome)

    def finalize_cached(self, shard: Shard, value: Any) -> None:
        """Settle a shard from the result cache: zero executions."""
        self.attempts[shard.index] = 0
        self.finalize(shard, "ok", value, "", node="cache", cached=True)


def _run_serial(ordered: Sequence[Shard], run: _Run) -> None:
    for shard in ordered:
        while True:
            run.charge(shard)
            status, payload = _worker(shard)
            if status == _OK:
                run.finalize(shard, "ok", payload, "", node="local")
                break
            run.record_error(shard, str(payload))
            if run.exhausted(shard):
                run.finalize(shard, "failed", None, str(payload),
                             node="local")
                break


def _run_pool(ordered: Sequence[Shard], jobs: int, run: _Run) -> None:
    pending: List[Shard] = list(ordered)
    while pending:
        executor = ProcessPoolExecutor(max_workers=jobs)
        retry: List[Shard] = []
        try:
            futures: List[Tuple[Shard, "Future[Tuple[str, Any]]"]] = [
                (shard, executor.submit(_worker, shard)) for shard in pending
            ]
            for shard, future in futures:
                run.charge(shard)
                try:
                    status, payload = future.result()
                except BrokenProcessPool:
                    # a worker died; the pool cannot attribute the death,
                    # so every uncollected shard is (conservatively)
                    # charged and retried
                    run.crashes[shard.index] = (
                        run.crashes.get(shard.index, 0) + 1
                    )
                    run.record_error(shard, "worker process died")
                    if run.exhausted(shard):
                        run.finalize(
                            shard, "failed", None,
                            "worker process died (after "
                            f"{run.attempts[shard.index]} attempt(s))",
                            node="local",
                        )
                    else:
                        retry.append(shard)
                    continue
                if status == _OK:
                    run.finalize(shard, "ok", payload, "", node="local")
                    continue
                run.record_error(shard, str(payload))
                if run.exhausted(shard):
                    run.finalize(shard, "failed", None, str(payload),
                                 node="local")
                else:
                    retry.append(shard)
        finally:
            executor.shutdown(wait=True)
        pending = retry


def _run_local(to_run: Sequence[Shard], jobs: int, run: _Run) -> None:
    if jobs == 1 or len(to_run) <= 1:
        _run_serial(to_run, run)
    else:
        _run_pool(to_run, jobs, run)


def run_shards(
    shards: Sequence[Shard],
    jobs: int = 1,
    *,
    retries: int = 1,
    partial: bool = False,
    progress: Optional[ProgressFn] = None,
    backend: str = "local",
    cache: Optional["ResultCache"] = None,
    cluster: Optional["ClusterConfig"] = None,
) -> List[ShardOutcome]:
    """Execute every shard; returns outcomes sorted by shard index.

    ``jobs=1`` runs the shards inline in index order through the exact
    same worker code path the pool uses, so the two modes cannot
    diverge.  ``retries`` is the extra attempts a crashed or raising
    shard gets (default 1: retry-once).  With ``partial=False`` any
    shard still failed after its retries raises :class:`ShardError`;
    with ``partial=True`` failures come back as outcomes with
    ``status == "failed"`` and ``value is None``.

    ``backend="cluster"`` dispatches to worker nodes through
    :mod:`repro.parallel.dispatch` (``jobs`` then sizes the spawned
    worker fleet unless ``cluster.workers`` overrides it); if the
    cluster cannot finish the batch -- no worker ever registered, or
    every node died -- the leftovers run on the local pool, so the call
    still returns a complete merge.

    ``cache`` short-circuits shards whose content address already has a
    stored result (``cached=True``, ``attempts == 0`` outcomes) and
    persists fresh ok results; it composes with either backend.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (choose from {', '.join(BACKENDS)})"
        )
    ordered = _check_shards(shards)
    run = _Run(total=len(ordered), retries=retries, progress=progress)

    to_run: Sequence[Shard] = ordered
    if cache is not None:
        uncached: List[Shard] = []
        for shard in ordered:
            hit, value = cache.lookup(shard)
            if hit:
                run.finalize_cached(shard, value)
            else:
                uncached.append(shard)
        to_run = uncached

    if to_run:
        if backend == "cluster":
            from repro.parallel.dispatch.coordinator import run_cluster

            leftovers = run_cluster(to_run, run, jobs=jobs, config=cluster)
            if leftovers:
                # graceful degradation: whatever the cluster could not
                # place finishes on this host's pool
                _run_local(leftovers, jobs, run)
        else:
            _run_local(to_run, jobs, run)
        if cache is not None:
            for shard in to_run:
                done = run.outcomes[shard.index]
                if done.ok:
                    cache.store(shard, done.value)

    outcomes = [run.outcomes[shard.index] for shard in ordered]
    if not partial:
        failed = [o for o in outcomes if not o.ok]
        if failed:
            detail = "; ".join(
                f"{o.shard.key}: {o.error} "
                f"(attempt {o.attempts}"
                + (f"; earlier: {'; '.join(o.history[:-1])}"
                   if len(o.history) > 1 else "")
                + ")"
                for o in failed[:5]
            )
            raise ShardError(
                f"{len(failed)}/{len(outcomes)} shard(s) failed: {detail}",
                outcomes,
            )
    return outcomes


def merged_values(outcomes: Sequence[ShardOutcome]) -> List[Any]:
    """The values of successful outcomes, in shard-index order.

    Failed shards (possible only in partial mode) are skipped; callers
    that need to know which cells are missing inspect the outcomes.
    """
    ordered = sorted(outcomes, key=lambda o: o.shard.index)
    return [o.value for o in ordered if o.ok]
