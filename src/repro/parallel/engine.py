"""The process-pool execution engine with a deterministic merge.

``run_shards`` executes a list of :class:`~repro.parallel.shard.Shard`
cells either inline (``jobs=1``) or on a process pool (``jobs>1``) and
returns one :class:`~repro.parallel.shard.ShardOutcome` per shard,
**sorted by shard index** -- never by completion order -- so the caller
sees exactly what a serial loop would have produced.

Failure semantics (see ``docs/PARALLEL.md``):

- a shard that raises inside the worker is reported back as a value
  (the worker wrapper catches it), so an exception never poisons the
  pool; the shard is retried up to ``retries`` more times;
- a worker *process* that dies (killed, segfaulted, ``os._exit``)
  breaks the pool; the engine rebuilds the pool and re-runs every shard
  whose result had not been collected, charging each an attempt --
  the pool cannot say which shard killed it, so the charge is
  conservative (documented in ``docs/PARALLEL.md``);
- shards still failing after their retry budget become ``failed``
  outcomes; with ``partial=False`` (the default) the run then raises
  :class:`~repro.parallel.shard.ShardError` listing them, with
  ``partial=True`` the failed outcomes are returned alongside the good
  ones so the caller can report exactly which cells were lost.

Hung shards are the job of the *shards themselves*: simulation cells
run under the existing :class:`~repro.sim.driver.Watchdog` step
budgets, which turn a livelock into a typed diagnostic deterministically
(the same number of simulated events every run) -- a wall-clock kill
here would make results depend on host timing, which the determinism
lint (DT003) exists to prevent.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parallel.shard import Shard, ShardError, ShardOutcome, execute_shard

#: progress callback: (finished outcome, shards finished, shards total)
ProgressFn = Callable[[ShardOutcome, int, int], None]

#: worker payload statuses (in-worker exceptions travel as values so an
#: application error never breaks the pool)
_OK = "ok"
_RAISED = "raised"


def _worker(shard: Shard) -> Tuple[str, Any]:
    """Top-level worker entry point (must be picklable by name)."""
    try:
        return (_OK, execute_shard(shard))
    except Exception as exc:
        return (_RAISED, f"{type(exc).__name__}: {exc}")


def _check_shards(shards: Sequence[Shard]) -> List[Shard]:
    ordered = sorted(shards, key=lambda s: s.index)
    seen_index: Dict[int, str] = {}
    seen_key: Dict[str, int] = {}
    for shard in ordered:
        if shard.index in seen_index:
            raise ValueError(
                f"duplicate shard index {shard.index} "
                f"({seen_index[shard.index]!r} vs {shard.key!r})"
            )
        if shard.key in seen_key:
            raise ValueError(f"duplicate shard key {shard.key!r}")
        seen_index[shard.index] = shard.key
        seen_key[shard.key] = shard.index
    return ordered


class _Run:
    """Mutable bookkeeping for one ``run_shards`` invocation."""

    def __init__(
        self,
        total: int,
        retries: int,
        progress: Optional[ProgressFn],
    ) -> None:
        self.total = total
        self.retries = retries
        self.progress = progress
        self.outcomes: Dict[int, ShardOutcome] = {}
        self.attempts: Dict[int, int] = {}
        self.crashes: Dict[int, int] = {}
        self.finished = 0

    def charge(self, shard: Shard, crashed: bool = False) -> int:
        """Record one attempt (and optionally one crash); returns the
        attempts used so far."""
        self.attempts[shard.index] = self.attempts.get(shard.index, 0) + 1
        if crashed:
            self.crashes[shard.index] = self.crashes.get(shard.index, 0) + 1
        return self.attempts[shard.index]

    def exhausted(self, shard: Shard) -> bool:
        return self.attempts.get(shard.index, 0) > self.retries

    def finalize(self, shard: Shard, status: str, value: Any, error: str) -> None:
        outcome = ShardOutcome(
            shard=shard,
            status=status,
            value=value,
            error=error,
            attempts=self.attempts.get(shard.index, 1),
            worker_crashes=self.crashes.get(shard.index, 0),
        )
        self.outcomes[shard.index] = outcome
        self.finished += 1
        if self.progress is not None:
            self.progress(outcome, self.finished, self.total)


def _run_serial(ordered: Sequence[Shard], run: _Run) -> None:
    for shard in ordered:
        while True:
            run.charge(shard)
            status, payload = _worker(shard)
            if status == _OK:
                run.finalize(shard, "ok", payload, "")
                break
            if run.exhausted(shard):
                run.finalize(shard, "failed", None, str(payload))
                break


def _run_pool(ordered: Sequence[Shard], jobs: int, run: _Run) -> None:
    pending: List[Shard] = list(ordered)
    while pending:
        executor = ProcessPoolExecutor(max_workers=jobs)
        retry: List[Shard] = []
        try:
            futures: List[Tuple[Shard, "Future[Tuple[str, Any]]"]] = [
                (shard, executor.submit(_worker, shard)) for shard in pending
            ]
            for shard, future in futures:
                run.charge(shard)
                try:
                    status, payload = future.result()
                except BrokenProcessPool:
                    # a worker died; the pool cannot attribute the death,
                    # so every uncollected shard is (conservatively)
                    # charged and retried
                    run.crashes[shard.index] = (
                        run.crashes.get(shard.index, 0) + 1
                    )
                    if run.exhausted(shard):
                        run.finalize(
                            shard, "failed", None,
                            "worker process died (after "
                            f"{run.attempts[shard.index]} attempt(s))",
                        )
                    else:
                        retry.append(shard)
                    continue
                if status == _OK:
                    run.finalize(shard, "ok", payload, "")
                elif run.exhausted(shard):
                    run.finalize(shard, "failed", None, str(payload))
                else:
                    retry.append(shard)
        finally:
            executor.shutdown(wait=True)
        pending = retry


def run_shards(
    shards: Sequence[Shard],
    jobs: int = 1,
    *,
    retries: int = 1,
    partial: bool = False,
    progress: Optional[ProgressFn] = None,
) -> List[ShardOutcome]:
    """Execute every shard; returns outcomes sorted by shard index.

    ``jobs=1`` runs the shards inline in index order through the exact
    same worker code path the pool uses, so the two modes cannot
    diverge.  ``retries`` is the extra attempts a crashed or raising
    shard gets (default 1: retry-once).  With ``partial=False`` any
    shard still failed after its retries raises :class:`ShardError`;
    with ``partial=True`` failures come back as outcomes with
    ``status == "failed"`` and ``value is None``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    ordered = _check_shards(shards)
    run = _Run(total=len(ordered), retries=retries, progress=progress)
    if jobs == 1 or len(ordered) <= 1:
        _run_serial(ordered, run)
    else:
        _run_pool(ordered, jobs, run)
    outcomes = [run.outcomes[shard.index] for shard in ordered]
    if not partial:
        failed = [o for o in outcomes if not o.ok]
        if failed:
            detail = "; ".join(
                f"{o.shard.key}: {o.error}" for o in failed[:5]
            )
            raise ShardError(
                f"{len(failed)}/{len(outcomes)} shard(s) failed: {detail}",
                outcomes,
            )
    return outcomes


def merged_values(outcomes: Sequence[ShardOutcome]) -> List[Any]:
    """The values of successful outcomes, in shard-index order.

    Failed shards (possible only in partial mode) are skipped; callers
    that need to know which cells are missing inspect the outcomes.
    """
    ordered = sorted(outcomes, key=lambda o: o.shard.index)
    return [o.value for o in ordered if o.ok]
