"""``repro.parallel``: the deterministic sharded execution engine.

Every heavy driver in this repository -- the fault campaign, the DPOR
explorer, the experiment sweeps, ``repro bench run`` -- is a fan-out
over independent cells: pure functions of ``(callable, seed, params)``.
This package runs those cells in worker processes and merges the
results so that an ``N``-worker run is **bit-identical** to the serial
run: work is partitioned into :class:`~repro.parallel.shard.Shard`
values keyed by a stable ordinal, workers receive nothing but the
shard's picklable parameters, and the merge re-sorts outcomes by shard
key before anything downstream sees them.

Robustness follows the fault-campaign playbook (``docs/PARALLEL.md``):

- *timeouts* are simulated-step budgets enforced **inside** shards by
  the existing :class:`~repro.sim.driver.Watchdog` machinery, so a hung
  cell becomes a typed diagnostic in that shard's result instead of a
  wall-clock kill that would vary run to run;
- a *crashed worker process* (or a shard that raises) is retried once
  by default (:func:`~repro.parallel.engine.run_shards` ``retries``);
- *partial-results mode* reports which shards failed instead of dying.
"""

from repro.parallel.engine import ProgressFn, merged_values, run_shards
from repro.parallel.shard import (
    Shard,
    ShardError,
    ShardOutcome,
    execute_shard,
    resolve_callable,
)

__all__ = [
    "ProgressFn",
    "Shard",
    "ShardError",
    "ShardOutcome",
    "execute_shard",
    "merged_values",
    "resolve_callable",
    "run_shards",
]
