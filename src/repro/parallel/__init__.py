"""``repro.parallel``: the deterministic sharded execution engine.

Every heavy driver in this repository -- the fault campaign, the DPOR
explorer, the experiment sweeps, ``repro bench run`` -- is a fan-out
over independent cells: pure functions of ``(callable, seed, params)``.
This package runs those cells on workers and merges the results so that
an ``N``-worker run is **bit-identical** to the serial run: work is
partitioned into :class:`~repro.parallel.shard.Shard` values keyed by a
stable ordinal, workers receive nothing but the shard's picklable
parameters, and the merge re-sorts outcomes by shard key before
anything downstream sees them.

Two dispatch backends share that contract (``run_shards(backend=...)``):

- ``"local"``   -- this host's process pool (PR 5 behaviour);
- ``"cluster"`` -- the fault-tolerant dispatch layer
  (:mod:`repro.parallel.dispatch`): socket worker nodes with heartbeat
  liveness and deadline eviction, per-shard retry with
  decorrelated-jitter backoff, work-stealing from slow nodes, and
  graceful degradation back to the local pool.

Robustness follows the fault-campaign playbook (``docs/PARALLEL.md``):

- *timeouts* on results are simulated-step budgets enforced **inside**
  shards by the existing :class:`~repro.sim.driver.Watchdog` machinery,
  so a hung cell becomes a typed diagnostic in that shard's result
  instead of a wall-clock kill that would vary run to run (the cluster
  backend's wall-clock deadlines judge *node health* only, never
  results);
- a *crashed worker* (or a shard that raises) is retried, and each
  failed attempt's error is kept in ``ShardOutcome.history``;
- *partial-results mode* reports which shards failed instead of dying;
- the *result cache* (``cache=``,
  :class:`~repro.parallel.dispatch.cache.ResultCache`) makes campaigns
  resumable: finished cells are content-addressed on disk and a re-run
  executes only changed or missing ones.
"""

from repro.parallel.engine import (
    BACKENDS,
    ProgressFn,
    merged_values,
    run_shards,
)
from repro.parallel.shard import (
    Shard,
    ShardError,
    ShardOutcome,
    execute_shard,
    resolve_callable,
)
from repro.parallel.dispatch.cache import ResultCache
from repro.parallel.dispatch.coordinator import ClusterConfig

__all__ = [
    "BACKENDS",
    "ClusterConfig",
    "ProgressFn",
    "ResultCache",
    "Shard",
    "ShardError",
    "ShardOutcome",
    "execute_shard",
    "merged_values",
    "resolve_callable",
    "run_shards",
]
