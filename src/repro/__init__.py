"""repro: a reproduction of Weissman's ASPLOS 1998 thread-locality system.

"Performance Counters and State Sharing Annotations: a Unified Approach
to Thread Locality" combines three mechanisms:

1. an analytical **shared-state cache model** predicting per-thread cache
   footprints on-line from hardware miss counters
   (:mod:`repro.core.model`, :mod:`repro.core.markov`);
2. **sharing annotations** (``at_share``) describing inter-thread state
   overlap (:mod:`repro.core.sharing`);
3. two **locality scheduling policies** -- Largest Footprint First and
   smallest Cache-Reload raTio -- with O(d)-per-switch log-space priority
   updates (:mod:`repro.core.priorities`, :mod:`repro.sched`).

Because CPython threads offer no placement control, the entire evaluation
platform is simulated (:mod:`repro.machine`, :mod:`repro.threads`,
:mod:`repro.sim`); see DESIGN.md for the substitution argument and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import Machine, Runtime, ULTRA1, make_lff
    from repro.threads import Touch, Compute, Sleep

    machine = Machine(ULTRA1)
    runtime = Runtime(machine, make_lff())
    region = runtime.alloc_lines("state", 100)

    def worker():
        for _ in range(10):
            yield Touch(region.lines())
            yield Compute(1000)
            yield Sleep(5000)

    runtime.at_create(worker, name="worker")
    runtime.run()
    print(machine.total_l2_misses(), "E-cache misses")
"""

from repro.core import (
    CRTScheme,
    FootprintEstimator,
    LFFScheme,
    PrecomputedTables,
    SharedStateModel,
    SharingGraph,
)
from repro.machine import (
    E5000_8CPU,
    Machine,
    MachineConfig,
    SMALL,
    ULTRA1,
)
from repro.sched import FCFSScheduler, LocalityScheduler, make_crt, make_lff
from repro.sim import FootprintTracer, run_monitored, run_performance
from repro.threads import Runtime

__version__ = "1.0.0"

__all__ = [
    "CRTScheme",
    "E5000_8CPU",
    "FCFSScheduler",
    "FootprintEstimator",
    "FootprintTracer",
    "LFFScheme",
    "LocalityScheduler",
    "Machine",
    "MachineConfig",
    "PrecomputedTables",
    "Runtime",
    "SMALL",
    "SharedStateModel",
    "SharingGraph",
    "ULTRA1",
    "make_crt",
    "make_lff",
    "run_monitored",
    "run_performance",
]
